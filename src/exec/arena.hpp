// Slab allocator for plan execution (DESIGN.md §10).
//
// All per-batch tensors of a compiled plan — values, gradients, saved-for-
// backward buffers, kernel scratch — are carved out of ONE float slab at bind
// time by an event-driven first-fit sweep over the plan's liveness intervals.
// The hot path (run_fwd/run_bwd) then performs zero allocations. The slab
// only ever grows (monotone across binds), so a steady-state training loop
// stops touching the system allocator after the first few batches.
#pragma once

#include <cstdint>
#include <vector>

namespace cgps::exec {

// One buffer to place: `floats` elements, live over global step indices
// [def, last] inclusive (see plan.hpp). last < def means a point allocation
// at def (scratch, dead values).
struct ArenaRequest {
  std::int64_t floats = 0;
  int def = 0;
  int last = 0;
};

class Arena {
 public:
  // Assign a slab offset (in floats) to every request. Offsets and rounded
  // sizes are 64-byte aligned. Buffers whose lifetimes overlap never share
  // bytes; disjoint lifetimes are packed first-fit with free-block
  // coalescing. Grows the slab if this bind needs more than any previous one.
  std::vector<std::int64_t> bind(const std::vector<ArenaRequest>& requests);

  float* base() { return slab_.data(); }
  // High-water mark of the most recent bind, in bytes (exec.arena_bytes).
  std::int64_t bound_bytes() const { return bound_floats_ * static_cast<std::int64_t>(sizeof(float)); }
  std::int64_t capacity_bytes() const {
    return static_cast<std::int64_t>(slab_.size()) * static_cast<std::int64_t>(sizeof(float));
  }

 private:
  std::vector<float> slab_;
  std::int64_t bound_floats_ = 0;
};

}  // namespace cgps::exec
