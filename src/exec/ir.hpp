// Plan IR for the compiled executor (DESIGN.md §10).
//
// A Program is a flat, topologically ordered list of NodeDefs recorded once
// per (model config, training flag, loss kind) by gps_program.cpp. Row counts
// are *symbolic* (RowsSym) so one program serves every batch; they resolve to
// concrete sizes at bind time. Node ids double as value ids, and the inputs
// vector of each node lists its operands in the exact order the eager op
// passes parents to Tensor::make — the backward schedule is derived by
// replaying the eager tape DFS over this graph (plan.cpp), which is what
// makes scalar planned execution bit-identical to eager.
#pragma once

#include "tensor/tensor.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace cgps::exec {

enum class Op : std::uint8_t {
  // Sources (no forward work except kZeros/kInput pointer binding).
  kParam,
  kInput,
  kZeros,
  // Structure.
  kGather,
  kScatterAdd,
  kSegmentMean,
  kConcat,
  // Linear algebra / broadcasting.
  kMatmul,
  kAddRowvec,
  // Elementwise.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMulColvec,  // out[i,j] = x[i,j] * col[i]  (col is (rows,1))
  kScale,
  kAddScalar,
  kRelu,
  kSigmoid,
  kSquare,
  // Stateful layers.
  kDropout,
  kBatchNorm,
  // Reductions / losses.
  kSumAll,
  kBce,
  kMse,
  // Mega ops: one node per attention module; the executor replays the exact
  // eager per-block program inside a single forward/backward step (the
  // softmax+scale fusion of DESIGN.md §10 lives here).
  kMultihead,
  kPerformer,
  // Fused step kinds, produced only by the fusion pass (plan.cpp); they
  // never appear as node ops.
  kLinear,      // matmul + bias
  kLinearRelu,  // matmul + bias + relu
  kGateChain,   // sigmoid(e_hat) * msg, both values materialized
};

// Symbolic row counts, resolved per batch at bind time.
enum class RowsSym : std::uint8_t {
  kFixed,   // parameters and other static shapes
  kN,       // batch nodes
  kE,       // batch edges
  kG,       // graphs in the batch
  kNet,     // head-statistics group sizes (bind-computed partition)
  kDevice,
  kPin,
  kOne,
};

// Bind-time data sources: index arrays and external float matrices taken
// from the SubgraphBatch (or, for kTarget/kWeight, from the runner).
enum class SrcKind : std::uint8_t {
  kNone,
  // int32 index arrays.
  kNodeType,
  kDist0,
  kDist1,
  kDrnl,
  kEdgeType,
  kEdgeSrc,
  kEdgeDst,
  kGraphOfNode,
  kPinRoles,
  kNetRows,
  kDeviceRows,
  kPinRows,
  kAnchorA,
  kAnchorB,
  // float matrices.
  kXc,
  kPeDense,
  kTarget,
  kWeight,
};

struct NodeDef {
  Op op = Op::kZeros;
  // Operand value ids in eager parent order (kBatchNorm: {x, gamma, beta};
  // mega: {x, weights...} — weight leaves never fire closures, so only the
  // x-first position matters for the tape DFS).
  std::vector<int> inputs;
  RowsSym rows = RowsSym::kN;
  std::int64_t fixed_rows = 0;  // when rows == kFixed
  std::int64_t cols = 0;
  bool requires_grad = false;

  float scalar = 0.0f;      // kScale factor / kAddScalar addend
  int inv_numel_node = -1;  // kScale: resolve scalar = 1/numel(this node) at bind
                            // (mean_all = scale(sum_all(x), 1/numel(x)))

  SrcKind src = SrcKind::kNone;   // kInput source; kGather/kScatterAdd/kSegmentMean index
  RowsSym idx_rows = RowsSym::kN; // element count of the index array

  bool training = false;          // kBatchNorm statistics / (unused otherwise)
  float p = 0.0f;                 // kDropout probability
  float momentum = 0.1f;          // kBatchNorm
  float eps = 1e-5f;

  Tensor param;  // kParam: the model tensor (shared autograd node)
  std::string param_name;  // kParam: registration name; keys the quant store
  std::vector<float>* running_mean = nullptr;  // kBatchNorm buffers
  std::vector<float>* running_var = nullptr;

  // Mega attention payload: per-head projection weights in q,k,v order
  // (mh_w[3h], mh_w[3h+1], mh_w[3h+2]) plus the out-projection handled as
  // ordinary kMatmul/kAddRowvec nodes downstream.
  std::vector<Tensor> mh_w;
  std::vector<Tensor> mh_omega;  // kPerformer frozen features, per head
  std::int64_t heads = 0;
  std::int64_t head_dim = 0;
  std::int64_t features = 0;  // kPerformer m
};

// What loss the program ends in. kNone = inference program (no backward).
enum class LossKind : std::uint8_t { kNone, kBce, kMse, kWeightedMse };

struct Program {
  std::vector<NodeDef> nodes;
  int output = -1;  // head output node, (G, 1)
  int loss = -1;    // loss root node (scalar), -1 when LossKind::kNone
  bool training = false;
  LossKind loss_kind = LossKind::kNone;
};

}  // namespace cgps::exec
