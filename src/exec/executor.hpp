// Plan executor: binds a compiled Plan to one SubgraphBatch (resolving
// symbolic shapes, carving the arena, precomputing index groupings) and then
// runs the forward/backward schedules with zero allocation on the hot path
// (DESIGN.md §10).
//
// Equivalence contract: with the scalar backend, run_fwd/run_bwd produce
// values and gradients bitwise identical to eager CircuitGps::forward +
// Tensor::backward at any thread count. Every kernel call below replays the
// exact arithmetic (and per-buffer accumulation order) of the eager op
// closures; gradients of parameters accumulate into the model tensors so the
// optimizer is untouched.
#pragma once

#include "exec/arena.hpp"
#include "exec/backend.hpp"
#include "exec/plan.hpp"
#include "exec/quant.hpp"
#include "gps/batch.hpp"
#include "tensor/kernels.hpp"
#include "util/rng.hpp"

#include <cstdint>
#include <vector>

namespace cgps::exec {

class Executor {
 public:
  explicit Executor(Plan plan);

  // Resolve shapes and index arrays for one batch, carve the arena, and point
  // every step at its buffers. `target` (G floats) feeds the loss program;
  // `weight` is the kWeightedMse per-row weight (both may be null for
  // inference programs). Pointers must stay valid through run_fwd/run_bwd.
  void bind(const SubgraphBatch& batch, const float* target, const float* weight);

  // Execute the forward schedule. `rng` is the model's RNG: dropout steps
  // consume it in the exact eager emission order.
  void run_fwd(Rng& rng);
  // Execute the backward schedule (loss programs only). Parameter gradients
  // accumulate into the model tensors; call Optimizer::zero_grad as usual.
  void run_bwd();

  const Plan& plan() const { return plan_; }
  const float* value(int id) const { return val_[static_cast<std::size_t>(id)]; }
  std::int64_t node_rows(int id) const { return rows_[static_cast<std::size_t>(id)]; }
  std::int64_t arena_bytes() const { return arena_.bound_bytes(); }

  // Route kLinear/kLinearRelu/kGather forwards through int8 weights from
  // `store` (keyed by NodeDef::param_name; parameters without an entry stay
  // fp32). Inference programs only — the caller (PlanRunner) refuses to pair
  // quantization with a backward schedule. `store` must outlive the executor;
  // nullptr restores the all-fp32 path. Activation rows are quantized here in
  // shared (backend-independent) code, so scalar and AVX2 int8 results are
  // bitwise identical.
  void set_quant(const QuantStore* store);

 private:
  // Byte layout (in floats, relative to the node's aux block) of one mega
  // attention node: saved-for-backward tensors plus the scratch slots shared
  // across heads and blocks. Sized per bind.
  struct MegaLayout {
    // Saves, per head (x heads).
    std::int64_t q = 0, k = 0, v = 0;                      // N*dh each
    std::int64_t attn = 0;                                 // multihead: sum_len2
    std::int64_t e_q = 0, e_k = 0, phi_q = 0, phi_k = 0;   // performer: N*m
    std::int64_t numer = 0, denom = 0;                     // performer: N*dh / N
    std::int64_t kv = 0, z = 0;                            // performer: B*m*dh / B*m
    // Scratch slots, single instance.
    std::int64_t ndh_a = 0;                          // head_out (fwd) / dhead (bwd)
    std::int64_t ndh_q = 0, ndh_k = 0, ndh_v = 0;    // dq/dk/dv accumulators
    std::int64_t ndh_m = 0;                          // performer dq_mm/dk_mm
    std::int64_t ll_a = 0, ll_b = 0;                 // multihead maxlen^2
    std::int64_t dhl_a = 0, dhl_b = 0;               // multihead dh*maxlen
    std::int64_t lm_a = 0, lm_b = 0;                 // performer maxlen*m
    std::int64_t ldh_a = 0, ldh_b = 0;               // performer maxlen*dh
    std::int64_t ml_a = 0, ml_b = 0;                 // performer m*maxlen
    std::int64_t mdh = 0;                            // performer m*dh
    std::int64_t l_a = 0, l_b = 0, l_ones = 0;       // performer maxlen
    std::int64_t m_a = 0;                            // performer m
    std::int64_t total = 0;
  };

  std::int64_t resolve_rows(RowsSym sym, std::int64_t fixed) const;
  const std::int32_t* index_array(SrcKind src) const;
  const float* input_matrix(SrcKind src) const;
  std::int64_t aux_floats(int id);
  void exec_fwd_step(const Step& step, Rng& rng);
  void exec_bwd_step(const Step& step);
  void fwd_multihead(int id);
  void bwd_multihead(int id);
  void fwd_performer(int id);
  void bwd_performer(int id);
  void fwd_batchnorm(int id);
  void bwd_batchnorm(int id);
  void bwd_linear(const Step& step, const float* dyb);
  bool input_rg(int id, std::size_t slot) const;
  std::int64_t numel(int id) const {
    return rows_[static_cast<std::size_t>(id)] *
           plan_.prog.nodes[static_cast<std::size_t>(id)].cols;
  }

  Plan plan_;
  Arena arena_;
  const KernelBackend* backend_ = nullptr;

  // Resolved per bind.
  std::int64_t n_ = 0, e_ = 0, g_ = 0;
  const SubgraphBatch* batch_ = nullptr;
  const float* target_ = nullptr;
  const float* weight_ = nullptr;
  std::vector<std::int32_t> net_rows_, device_rows_, pin_rows_, pin_roles_;
  std::vector<std::int64_t> s2_off_;  // multihead per-block len^2 prefix sums
  std::int64_t max_len_ = 0, sum_len2_ = 0;

  std::vector<std::int64_t> rows_;
  std::vector<float*> val_;
  std::vector<float*> grad_;
  std::vector<float*> aux_;
  std::vector<float> fwd_scalar_;  // kScale factor with inv_numel resolved
  std::vector<kern::RowGroups> groups_storage_;
  std::vector<const kern::RowGroups*> groups_;
  std::vector<std::vector<float>> inv_counts_;  // kSegmentMean per-node
  std::vector<MegaLayout> mega_;
  std::vector<int> param_ids_;
  std::vector<ArenaRequest> requests_;   // reused across binds
  std::vector<float> fused_scratch_;    // kLinearRelu backward dyb (grow-only)

  // Int8 inference path (set_quant). quant_of_[id] is the store entry of a
  // kParam node, or nullptr; qx_/qsx_ are the per-bind activation
  // quantization scratch (grow-only, like fused_scratch_).
  const QuantStore* quant_ = nullptr;
  std::vector<const QuantizedTensor*> quant_of_;
  std::vector<std::int8_t> qx_;
  std::vector<float> qsx_;
};

}  // namespace cgps::exec
