#include "exec/arena.hpp"

#include <algorithm>
#include <queue>

namespace cgps::exec {

namespace {

// 64-byte alignment in float units: cache-line-friendly and enough for any
// current or future SIMD backend (AVX-512 loads included).
constexpr std::int64_t kAlignFloats = 16;

std::int64_t round_up(std::int64_t floats) {
  return (floats + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

struct FreeBlock {
  std::int64_t offset = 0;
  std::int64_t size = 0;
};

// Insert a freed block into the offset-sorted free list, coalescing with
// adjacent neighbours so long-lived fragmentation cannot build up.
void release(std::vector<FreeBlock>& free_list, std::int64_t offset, std::int64_t size) {
  auto it = std::lower_bound(
      free_list.begin(), free_list.end(), offset,
      [](const FreeBlock& b, std::int64_t off) { return b.offset < off; });
  // Merge with the successor.
  if (it != free_list.end() && offset + size == it->offset) {
    it->offset = offset;
    it->size += size;
    if (it != free_list.begin()) {
      auto prev = std::prev(it);
      if (prev->offset + prev->size == it->offset) {
        prev->size += it->size;
        free_list.erase(it);
      }
    }
    return;
  }
  // Merge with the predecessor.
  if (it != free_list.begin()) {
    auto prev = std::prev(it);
    if (prev->offset + prev->size == offset) {
      prev->size += size;
      return;
    }
  }
  free_list.insert(it, FreeBlock{offset, size});
}

}  // namespace

std::vector<std::int64_t> Arena::bind(const std::vector<ArenaRequest>& requests) {
  std::vector<std::int64_t> offsets(requests.size(), 0);

  // Process in ascending def order (stable on request index so equal-def
  // placement is deterministic).
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return requests[a].def < requests[b].def;
  });

  struct Live {
    int last = 0;
    std::int64_t offset = 0;
    std::int64_t size = 0;
    bool operator>(const Live& o) const { return last > o.last; }
  };
  std::priority_queue<Live, std::vector<Live>, std::greater<Live>> expiring;
  std::vector<FreeBlock> free_list;
  std::int64_t high_water = 0;

  for (const std::size_t i : order) {
    const ArenaRequest& req = requests[i];
    if (req.floats <= 0) continue;
    // Expire everything whose lifetime ended strictly before this def.
    while (!expiring.empty() && expiring.top().last < req.def) {
      const Live done = expiring.top();
      expiring.pop();
      release(free_list, done.offset, done.size);
    }
    const std::int64_t need = round_up(req.floats);
    std::int64_t offset = -1;
    // First fit.
    for (auto it = free_list.begin(); it != free_list.end(); ++it) {
      if (it->size < need) continue;
      offset = it->offset;
      it->offset += need;
      it->size -= need;
      if (it->size == 0) free_list.erase(it);
      break;
    }
    if (offset < 0) {
      // Extend the slab; absorb a trailing free block touching the high-water
      // mark so extension does not strand it.
      if (!free_list.empty() &&
          free_list.back().offset + free_list.back().size == high_water) {
        offset = free_list.back().offset;
        free_list.pop_back();
      } else {
        offset = high_water;
      }
      high_water = offset + need;
    }
    offsets[i] = offset;
    expiring.push(Live{std::max(req.last, req.def), offset, need});
  }

  bound_floats_ = high_water;
  if (high_water > static_cast<std::int64_t>(slab_.size()))
    slab_.resize(static_cast<std::size_t>(high_water));  // monotone growth
  return offsets;
}

}  // namespace cgps::exec
