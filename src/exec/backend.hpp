// Pluggable kernel backend for the planned executor (DESIGN.md §10).
//
// The executor routes its compute-bound inner loops — the matmul family and
// the fused kernels — through this interface; everything memory-bound stays
// on the shared kern:: reference loops. Contract every implementation must
// honour:
//   * Output-disjoint parallel partitioning identical to kern:: (chunks are
//     a pure function of problem size), so results are deterministic at any
//     thread count.
//   * The scalar backend is the bit-exact reference: its results are
//     bitwise identical to the eager ops at every thread count.
//   * SIMD backends may re-associate within one output element (FMA, vector
//     lanes) — planned-vs-eager then agrees to ~1e-5 relative — but must
//     keep the same serial accumulation *order across elements*.
//   * No allocation anywhere in a kernel body: every buffer, including
//     scratch, is carved from the plan arena by the caller
//     (tools/cgps_lint enforces this for src/exec/backend_*.cpp).
#pragma once

#include <cstdint>

namespace cgps::exec {

class KernelBackend {
 public:
  virtual ~KernelBackend() = default;
  // Stable identifier used in bench metric keys ("exec.<name>.*") and logs.
  virtual const char* name() const = 0;

  // C(m,n) = A(m,k) B(k,n); zeroes the output itself.
  virtual void matmul_fwd(const float* a, const float* b, float* o, std::int64_t m,
                          std::int64_t k, std::int64_t n) const = 0;
  // dA(rows,inner) += dC(rows,cols) B(inner,cols)^T.
  virtual void matmul_da(const float* dc, const float* b, float* da, std::int64_t rows,
                         std::int64_t inner, std::int64_t cols) const = 0;
  // dB(inner,cols) += A(rows,inner)^T dC(rows,cols).
  virtual void matmul_db(const float* dc, const float* a, float* db, std::int64_t rows,
                         std::int64_t inner, std::int64_t cols) const = 0;

  // Fused linear: O = X W + bias, one pass over the output rows.
  virtual void linear_fwd(const float* x, const float* w, const float* bias, float* o,
                          std::int64_t m, std::int64_t k, std::int64_t n) const = 0;
  // Fused linear + ReLU: O = max(X W + bias, 0).
  virtual void linear_relu_fwd(const float* x, const float* w, const float* bias, float* o,
                               std::int64_t m, std::int64_t k, std::int64_t n) const = 0;
  // Fused GatedGCN gate chain: eta = sigmoid(e_hat), msg = eta * lm, one pass.
  // Both outputs are materialized (eta feeds the denominator scatter).
  virtual void gate_chain_fwd(const float* e_hat, const float* lm, float* eta, float* msg,
                              std::int64_t count) const = 0;

  // Int8 fused linear with fp32 accumulation (src/exec/quant.hpp owns the
  // quantization format). xq is the per-row-quantized activation matrix
  // (m,k) with row scales sx[m]; wq is the *transposed* weight (n,k) with
  // per-output-row scales sw[n]. Each output element is one exact int32 dot
  // product (the caller guarantees k*127*127 < 2^31) combined through
  // q8_combine — the identical expression in every backend, so scalar and
  // AVX2 int8 results are bitwise equal.
  virtual void linear_fwd_q8(const std::int8_t* xq, const float* sx, const std::int8_t* wq,
                             const float* sw, const float* bias, float* o, std::int64_t m,
                             std::int64_t k, std::int64_t n) const = 0;
  // Int8 fused linear + ReLU: same contract, output clamped at zero.
  virtual void linear_relu_fwd_q8(const std::int8_t* xq, const float* sx,
                                  const std::int8_t* wq, const float* sw, const float* bias,
                                  float* o, std::int64_t m, std::int64_t k,
                                  std::int64_t n) const = 0;
};

// The bit-exact reference backend (always available).
const KernelBackend& scalar_backend();

// The AVX2/FMA backend, or nullptr when the build or the CPU lacks support.
const KernelBackend* avx2_backend();

// Resolve the backend for this run: CIRCUITGPS_BACKEND=scalar|avx2|auto.
// `auto` picks AVX2 when available; a forced `avx2` on an unsupported
// CPU/build warns once and falls back to scalar.
const KernelBackend& select_backend();

}  // namespace cgps::exec
