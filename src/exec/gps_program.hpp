// Program recorder: walks a CircuitGps configuration once and emits the flat
// Plan IR mirroring CircuitGps::forward statement-for-statement (DESIGN.md
// §10). The recorded program is shape-symbolic — one program per (config,
// training flag, loss kind) serves every batch.
#pragma once

#include "exec/ir.hpp"
#include "gps/model.hpp"

namespace cgps::exec {

// Whether the planned executor covers this configuration. Currently every
// config is supported (GINE included); the hook stays so callers keep their
// eager fallback if coverage ever regresses.
bool program_supported(const GpsConfig& config);

// Record the forward program of `model`, ending in `loss` (LossKind::kNone
// records an inference program whose last node is Program::output). The
// NodeDefs share the model's parameter tensors, so executing the compiled
// plan accumulates gradients straight into the model.
Program build_program(const CircuitGps& model, bool training, LossKind loss);

}  // namespace cgps::exec
