#include "exec/plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace cgps::exec {

namespace {

bool is_source(Op op) { return op == Op::kParam || op == Op::kInput; }

// Does this op save extra state for backward (or intra-step scratch that the
// arena owns)? kBatchNorm saves mean/invstd/xhat, kDropout its mask, the mega
// ops their per-head/per-block tensors.
bool has_aux(Op op) {
  return op == Op::kDropout || op == Op::kBatchNorm || op == Op::kMultihead ||
         op == Op::kPerformer;
}

// The eager tape DFS from tensor.cpp, replayed over the IR graph: iterative
// post-order, children (inputs) descended in parent order, pushed only when
// requires_grad and not yet visited, root pre-inserted. The reversed order is
// the exact closure firing order of Tensor::backward(), which is what makes
// scalar planned gradients bit-identical to eager.
std::vector<int> tape_post_order(const Program& prog, int root) {
  struct Frame {
    int node;
    std::size_t next_child;
  };
  std::vector<int> order;
  std::vector<char> visited(prog.nodes.size(), 0);
  std::vector<Frame> stack;
  visited[static_cast<std::size_t>(root)] = 1;
  stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    const NodeDef& node = prog.nodes[static_cast<std::size_t>(f.node)];
    if (f.next_child < node.inputs.size()) {
      const int child = node.inputs[f.next_child++];
      if (prog.nodes[static_cast<std::size_t>(child)].requires_grad &&
          visited[static_cast<std::size_t>(child)] == 0) {
        visited[static_cast<std::size_t>(child)] = 1;
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
  return order;
}

// Values whose forward result a backward step must still see (extends value
// liveness into the backward timeline). Mirrors what each eager closure
// captures/reads.
void bwd_value_reads(const Program& prog, const Step& step, std::vector<int>& out) {
  out.clear();
  const auto& nodes = prog.nodes;
  const auto own_inputs = [&](int id) -> const std::vector<int>& {
    return nodes[static_cast<std::size_t>(id)].inputs;
  };
  switch (step.op) {
    case Op::kMatmul:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMulColvec:
    case Op::kBce:
    case Op::kMse:
      out.push_back(own_inputs(step.n0)[0]);
      out.push_back(own_inputs(step.n0)[1]);
      break;
    case Op::kSigmoid:
      out.push_back(step.n0);  // y * (1 - y)
      break;
    case Op::kRelu:
    case Op::kSquare:
      out.push_back(own_inputs(step.n0)[0]);
      break;
    case Op::kMultihead:
    case Op::kPerformer:
      out.push_back(own_inputs(step.n0)[0]);  // x (weights are params, always live)
      break;
    case Op::kLinearRelu:
      // Fused backward masks with the *output* (bitwise equal to the eager
      // input mask: relu(x) > 0 <=> x > 0) and re-reads the matmul operands.
      out.push_back(step.n0);
      out.push_back(own_inputs(step.n2)[0]);
      out.push_back(own_inputs(step.n2)[1]);
      break;
    case Op::kLinear:
      out.push_back(own_inputs(step.n1)[0]);
      out.push_back(own_inputs(step.n1)[1]);
      break;
    default:
      break;  // routing / affine ops need only gradients
  }
}

}  // namespace

Plan compile(Program prog) {
  Plan plan;
  const int n = static_cast<int>(prog.nodes.size());

  // ---- consumer census (fusion legality + grad liveness) ----
  std::vector<std::vector<int>> consumers(static_cast<std::size_t>(n));
  std::vector<int> uses(static_cast<std::size_t>(n), 0);
  for (int id = 0; id < n; ++id) {
    for (int in : prog.nodes[static_cast<std::size_t>(id)].inputs) {
      consumers[static_cast<std::size_t>(in)].push_back(id);
      ++uses[static_cast<std::size_t>(in)];
    }
  }
  if (prog.output >= 0) ++uses[static_cast<std::size_t>(prog.output)];
  if (prog.loss >= 0) ++uses[static_cast<std::size_t>(prog.loss)];

  // ---- backward node order (pre-fusion), eager tape DFS ----
  std::vector<int> bwd_nodes;
  if (prog.loss >= 0 &&
      prog.nodes[static_cast<std::size_t>(prog.loss)].requires_grad) {
    std::vector<int> post = tape_post_order(prog, prog.loss);
    for (auto it = post.rbegin(); it != post.rend(); ++it) {
      const Op op = prog.nodes[static_cast<std::size_t>(*it)].op;
      if (!is_source(op) && op != Op::kZeros) bwd_nodes.push_back(*it);
    }
  }
  std::vector<int> bwd_pos(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < bwd_nodes.size(); ++i)
    bwd_pos[static_cast<std::size_t>(bwd_nodes[i])] = static_cast<int>(i);

  // ---- fusion pass ----
  // fused_as[id]: step op this node participates in, kept keyed on the node
  // that anchors the fused step. Backward schedules are derived from the
  // pre-fusion graph; a linear fusion additionally requires its constituent
  // closures to be adjacent in that schedule so the merged backward preserves
  // the exact eager firing order (they always are: only parameter leaves sit
  // between them in the tape).
  std::vector<char> fused_head(static_cast<std::size_t>(n), 0);   // anchors a fused step
  std::vector<char> fused_member(static_cast<std::size_t>(n), 0); // absorbed into one
  plan.value_elided.assign(static_cast<std::size_t>(n), 0);
  const auto node = [&](int id) -> const NodeDef& {
    return prog.nodes[static_cast<std::size_t>(id)];
  };
  const auto bwd_adjacent = [&](int a, int b) {
    // No backward (inference) imposes no constraint; otherwise require b to
    // fire right after a so one fused step can replace both.
    if (bwd_nodes.empty() || bwd_pos[static_cast<std::size_t>(a)] < 0) return true;
    return bwd_pos[static_cast<std::size_t>(b)] == bwd_pos[static_cast<std::size_t>(a)] + 1;
  };
  std::vector<Step> fused_steps(static_cast<std::size_t>(n));
  for (int id = 0; id < n; ++id) {
    const NodeDef& d = node(id);
    // linear+bias(+relu): matmul and add_rowvec outputs are single-use
    // intermediates recorded consecutively by the builder.
    if (d.op == Op::kAddRowvec && node(d.inputs[0]).op == Op::kMatmul &&
        d.inputs[0] == id - 1 && uses[static_cast<std::size_t>(d.inputs[0])] == 1 &&
        node(d.inputs[1]).op == Op::kParam) {
      const int mm = d.inputs[0];
      // relu directly on top extends the fusion.
      int relu = -1;
      if (id + 1 < n && node(id + 1).op == Op::kRelu && node(id + 1).inputs[0] == id &&
          uses[static_cast<std::size_t>(id)] == 1)
        relu = id + 1;
      if (relu >= 0 && bwd_adjacent(relu, id) && bwd_adjacent(id, mm)) {
        fused_head[static_cast<std::size_t>(relu)] = 1;
        fused_member[static_cast<std::size_t>(id)] = 1;
        fused_member[static_cast<std::size_t>(mm)] = 1;
        plan.value_elided[static_cast<std::size_t>(id)] = 1;
        plan.value_elided[static_cast<std::size_t>(mm)] = 1;
        fused_steps[static_cast<std::size_t>(relu)] = {Op::kLinearRelu, relu, id, mm};
      } else if (bwd_adjacent(id, mm)) {
        fused_head[static_cast<std::size_t>(id)] = 1;
        fused_member[static_cast<std::size_t>(mm)] = 1;
        plan.value_elided[static_cast<std::size_t>(mm)] = 1;
        fused_steps[static_cast<std::size_t>(id)] = {Op::kLinear, id, mm, -1};
      }
    }
    // GatedGCN gate chain: eta = sigmoid(e_hat), msg = eta * lin_msg. Forward
    // fuses into one pass (eta still materialized — the scatter consumes it);
    // backward keeps the two separate closures at their eager positions.
    // Legal only when every *other* consumer of eta is defined after the mul,
    // since eta's value now materializes at the mul's position.
    if (d.op == Op::kMul && node(d.inputs[0]).op == Op::kSigmoid &&
        !fused_member[static_cast<std::size_t>(d.inputs[0])] &&
        !fused_head[static_cast<std::size_t>(d.inputs[0])]) {
      const int eta = d.inputs[0];
      bool legal = true;
      for (int c : consumers[static_cast<std::size_t>(eta)])
        if (c != id && c < id) legal = false;
      if (legal && prog.output != eta && prog.loss != eta) {
        fused_head[static_cast<std::size_t>(id)] = 1;
        fused_member[static_cast<std::size_t>(eta)] = 1;  // drop its standalone fwd step
        fused_steps[static_cast<std::size_t>(id)] = {Op::kGateChain, id, eta, -1};
      }
    }
  }

  // ---- forward schedule ----
  for (int id = 0; id < n; ++id) {
    const Op op = node(id).op;
    if (is_source(op)) continue;
    if (fused_member[static_cast<std::size_t>(id)]) continue;
    if (fused_head[static_cast<std::size_t>(id)])
      plan.fwd.push_back(fused_steps[static_cast<std::size_t>(id)]);
    else
      plan.fwd.push_back({op, id, -1, -1});
  }
  const int f = static_cast<int>(plan.fwd.size());

  // ---- backward schedule ----
  // Walk the eager firing order; a fused head emits the merged step and its
  // members are skipped (they fire inside it, in the same relative order).
  {
    std::vector<char> absorbed(static_cast<std::size_t>(n), 0);
    for (std::size_t i = 0; i < bwd_nodes.size(); ++i) {
      const int id = bwd_nodes[i];
      if (absorbed[static_cast<std::size_t>(id)] != 0) continue;
      const Step& fs = fused_steps[static_cast<std::size_t>(id)];
      if (fused_head[static_cast<std::size_t>(id)] != 0 && fs.op != Op::kGateChain) {
        plan.bwd.push_back(fs);
        absorbed[static_cast<std::size_t>(fs.n1)] = 1;
        if (fs.n2 >= 0) absorbed[static_cast<std::size_t>(fs.n2)] = 1;
      } else {
        plan.bwd.push_back({node(id).op, id, -1, -1});
      }
    }
  }

  // ---- step index maps ----
  plan.node_def_step.assign(static_cast<std::size_t>(n), -1);
  for (int s = 0; s < f; ++s) {
    const Step& st = plan.fwd[static_cast<std::size_t>(s)];
    plan.node_def_step[static_cast<std::size_t>(st.n0)] = s;
    if (st.n1 >= 0) plan.node_def_step[static_cast<std::size_t>(st.n1)] = s;
    if (st.n2 >= 0) plan.node_def_step[static_cast<std::size_t>(st.n2)] = s;
  }
  plan.node_bwd_step.assign(static_cast<std::size_t>(n), -1);
  for (std::size_t s = 0; s < plan.bwd.size(); ++s) {
    const Step& st = plan.bwd[s];
    const int g = f + static_cast<int>(s);
    plan.node_bwd_step[static_cast<std::size_t>(st.n0)] = g;
    if (st.n1 >= 0 && st.op != Op::kGateChain)
      plan.node_bwd_step[static_cast<std::size_t>(st.n1)] = g;
    if (st.n2 >= 0) plan.node_bwd_step[static_cast<std::size_t>(st.n2)] = g;
  }

  // ---- liveness ----
  const int total = f + static_cast<int>(plan.bwd.size());
  plan.val.assign(static_cast<std::size_t>(n), Life{});
  plan.grad.assign(static_cast<std::size_t>(n), Life{});
  plan.aux.assign(static_cast<std::size_t>(n), Life{});

  for (int id = 0; id < n; ++id) {
    const NodeDef& d = node(id);
    if (is_source(d.op) || plan.value_elided[static_cast<std::size_t>(id)] != 0) continue;
    Life& v = plan.val[static_cast<std::size_t>(id)];
    v.def = plan.node_def_step[static_cast<std::size_t>(id)];
    v.last = v.def;
  }
  // Forward reads.
  for (int s = 0; s < f; ++s) {
    const Step& st = plan.fwd[static_cast<std::size_t>(s)];
    const auto read = [&](int in) {
      if (in < 0 || is_source(node(in).op)) return;
      if (plan.value_elided[static_cast<std::size_t>(in)] != 0) return;
      Life& v = plan.val[static_cast<std::size_t>(in)];
      v.last = std::max(v.last, s);
    };
    // Fused steps read the union of constituent inputs minus internal edges.
    const int deepest = st.n2 >= 0 ? st.n2 : (st.n1 >= 0 && st.op != Op::kGateChain ? st.n1 : st.n0);
    for (int in : node(deepest).inputs) read(in);
    if (st.op == Op::kLinear || st.op == Op::kLinearRelu) {
      const int arv = st.op == Op::kLinear ? st.n0 : st.n1;
      read(node(arv).inputs[1]);  // bias
    } else if (st.op == Op::kGateChain) {
      read(node(st.n1).inputs[0]);  // e_hat, the sigmoid operand
      for (int in : node(st.n0).inputs)
        if (in != st.n1) read(in);  // lin_msg operand; eta is internal
    }
  }
  // Backward reads + output/loss kept alive past the end for the runner.
  std::vector<int> reads;
  for (std::size_t s = 0; s < plan.bwd.size(); ++s) {
    const int g = f + static_cast<int>(s);
    bwd_value_reads(prog, plan.bwd[s], reads);
    for (int in : reads) {
      if (is_source(node(in).op)) continue;
      if (plan.value_elided[static_cast<std::size_t>(in)] != 0)
        throw std::logic_error("exec: fused-away value read by a backward step");
      Life& v = plan.val[static_cast<std::size_t>(in)];
      v.last = std::max(v.last, g);
    }
  }
  if (prog.output >= 0) plan.val[static_cast<std::size_t>(prog.output)].last = total;
  if (prog.loss >= 0) plan.val[static_cast<std::size_t>(prog.loss)].last = total;

  // Gradient intervals: first writer is the earliest-firing consumer closure
  // (the loss root's grad is seeded by the executor at the first backward
  // step); last reader is the node's own closure.
  plan.zero_grads.assign(plan.bwd.size(), {});
  for (int id = 0; id < n; ++id) {
    const NodeDef& d = node(id);
    if (!d.requires_grad || d.op == Op::kParam) continue;
    const int own = plan.node_bwd_step[static_cast<std::size_t>(id)];
    if (own < 0) continue;  // not reached by this loss
    if (plan.value_elided[static_cast<std::size_t>(id)] != 0) continue;
    int first = own;
    for (int c : consumers[static_cast<std::size_t>(id)]) {
      const int cs = plan.node_bwd_step[static_cast<std::size_t>(c)];
      if (cs >= 0) first = std::min(first, cs);
    }
    plan.grad[static_cast<std::size_t>(id)] = {first, own};
    plan.zero_grads[static_cast<std::size_t>(first - f)].push_back(id);
  }

  // Aux intervals: defined with the value, read by the node's own closure.
  for (int id = 0; id < n; ++id) {
    if (!has_aux(node(id).op)) continue;
    if (fused_member[static_cast<std::size_t>(id)] != 0) continue;
    const int def = plan.node_def_step[static_cast<std::size_t>(id)];
    const int own = plan.node_bwd_step[static_cast<std::size_t>(id)];
    plan.aux[static_cast<std::size_t>(id)] = {def, std::max(def, own)};
  }

  plan.prog = std::move(prog);
  return plan;
}

}  // namespace cgps::exec
