// Bit-exact reference backend: delegates the matmul family to the shared
// kern:: loops and implements the fused kernels as single passes whose
// per-element arithmetic is exactly the unfused sequence (full RN dot sum,
// then one bias add, then the ReLU compare), so fused scalar results are
// bitwise identical to eager. No allocation anywhere in this file
// (cgps_lint: exec-kernel-alloc).
#include "exec/backend.hpp"
#include "exec/quant.hpp"
#include "tensor/kernels.hpp"
#include "util/parallel.hpp"

namespace cgps::exec {

namespace {

class ScalarBackend final : public KernelBackend {
 public:
  const char* name() const override { return "scalar"; }

  void matmul_fwd(const float* a, const float* b, float* o, std::int64_t m, std::int64_t k,
                  std::int64_t n) const override {
    kern::matmul_fwd(a, b, o, m, k, n);
  }

  void matmul_da(const float* dc, const float* b, float* da, std::int64_t rows,
                 std::int64_t inner, std::int64_t cols) const override {
    kern::matmul_da(dc, b, da, rows, inner, cols);
  }

  void matmul_db(const float* dc, const float* a, float* db, std::int64_t rows,
                 std::int64_t inner, std::int64_t cols) const override {
    kern::matmul_db(dc, a, db, rows, inner, cols);
  }

  void linear_fwd(const float* x, const float* w, const float* bias, float* o, std::int64_t m,
                  std::int64_t k, std::int64_t n) const override {
    par::parallel_for(0, m, par::grain_for(k * n), [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        float* oi = o + i * n;
        accumulate_row(x + i * k, w, oi, k, n);
        for (std::int64_t j = 0; j < n; ++j) oi[j] += bias[j];
      }
    });
  }

  void linear_relu_fwd(const float* x, const float* w, const float* bias, float* o,
                       std::int64_t m, std::int64_t k, std::int64_t n) const override {
    par::parallel_for(0, m, par::grain_for(k * n), [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        float* oi = o + i * n;
        accumulate_row(x + i * k, w, oi, k, n);
        for (std::int64_t j = 0; j < n; ++j) oi[j] = kern::relu1(oi[j] + bias[j]);
      }
    });
  }

  void gate_chain_fwd(const float* e_hat, const float* lm, float* eta, float* msg,
                      std::int64_t count) const override {
    par::parallel_for(0, count, par::grain_for(2), [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        const float s = kern::sigmoid1(e_hat[i]);
        eta[i] = s;
        msg[i] = s * lm[i];
      }
    });
  }

  void linear_fwd_q8(const std::int8_t* xq, const float* sx, const std::int8_t* wq,
                     const float* sw, const float* bias, float* o, std::int64_t m,
                     std::int64_t k, std::int64_t n) const override {
    par::parallel_for(0, m, par::grain_for(k * n), [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        const std::int8_t* xi = xq + i * k;
        float* oi = o + i * n;
        const float sxi = sx[i];
        for (std::int64_t j = 0; j < n; ++j)
          oi[j] = q8_combine(sxi, sw[j], dot_q8(xi, wq + j * k, k), bias[j]);
      }
    });
  }

  void linear_relu_fwd_q8(const std::int8_t* xq, const float* sx, const std::int8_t* wq,
                          const float* sw, const float* bias, float* o, std::int64_t m,
                          std::int64_t k, std::int64_t n) const override {
    par::parallel_for(0, m, par::grain_for(k * n), [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        const std::int8_t* xi = xq + i * k;
        float* oi = o + i * n;
        const float sxi = sx[i];
        for (std::int64_t j = 0; j < n; ++j)
          oi[j] = kern::relu1(q8_combine(sxi, sw[j], dot_q8(xi, wq + j * k, k), bias[j]));
      }
    });
  }

 private:
  // One exact int32 dot product of two int8 rows (quant.hpp bounds k so the
  // accumulator cannot overflow). Integer addition is associative, so any
  // vectorized reimplementation of this sum is bitwise equivalent.
  static std::int32_t dot_q8(const std::int8_t* x, const std::int8_t* w, std::int64_t k) {
    std::int32_t acc = 0;
    for (std::int64_t p = 0; p < k; ++p)
      acc += static_cast<std::int32_t>(x[p]) * static_cast<std::int32_t>(w[p]);
    return acc;
  }

  // One output row of X W, the exact kern::matmul_fwd inner loop (zero, then
  // ikj axpy with zero-skip on the A element).
  static void accumulate_row(const float* xi, const float* w, float* oi, std::int64_t k,
                             std::int64_t n) {
    for (std::int64_t j = 0; j < n; ++j) oi[j] = 0.0f;
    for (std::int64_t p = 0; p < k; ++p) {
      const float xip = xi[p];
      if (xip == 0.0f) continue;
      const float* wp = w + p * n;
      for (std::int64_t j = 0; j < n; ++j) oi[j] += xip * wp[j];
    }
  }
};

}  // namespace

const KernelBackend& scalar_backend() {
  static const ScalarBackend backend;
  return backend;
}

}  // namespace cgps::exec
