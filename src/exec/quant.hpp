// Symmetric per-row int8 weight quantization for the planned executor's
// inference path (ROADMAP item 1, in the style of llama.cpp's block-quantized
// vec_dot matmuls, simplified to one fp32 scale per row).
//
// Format: a row of k floats becomes k int8 codes plus one fp32 scale
//   scale = maxabs(row) / 127          (0 for an all-zero row)
//   q[i]  = clamp(nearbyint(x[i] / scale), -127, 127)
// and dequantizes as x~[i] = scale * q[i]. Rounding is round-to-nearest-even
// (std::nearbyint under the default FP environment), saturation is symmetric
// at ±127 so negation is exact.
//
// Two layouts cover the model:
//   * kLinearT — a Linear weight W(k,n) stored *transposed* as n output rows
//     of k codes with per-output-row scales, so the quantized forward is one
//     contiguous int8 dot product per output element (exact int32
//     accumulation; the fp32 combine happens once per element in
//     q8_combine). Activations are quantized per row at run time by the
//     executor with the same helpers.
//   * kRows — an Embedding table stored row-major with per-table-row scales;
//     the forward gathers and dequantizes rows directly.
//
// Training and backward never see quantized weights: quantization is applied
// at plan-build time to inference programs only (runner.cpp refuses to build
// a backward schedule under CIRCUITGPS_QUANT=int8).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cgps {
class CircuitGps;
}  // namespace cgps

namespace cgps::exec {

// Largest inner dimension the int8 kernels accept: every dot product must
// accumulate exactly in int32, and k * 127 * 127 < 2^31 bounds k.
inline constexpr std::int64_t kQ8MaxK =
    (std::int64_t{1} << 31) / (127 * 127) - 1;

// The one fp32 combine expression shared by every int8 kernel. Both backends
// (and the tests) must call exactly this, so scalar and AVX2 int8 results are
// bitwise identical: the dot product `acc` is exact integer math, and this
// is the only floating-point arithmetic per output element. The volatile
// intermediate forces the product to round before the add — without it, TUs
// built with -mfma contract `p*a + b` into one fused rounding and diverge
// from TUs built without (caught by test_backend_fuzz).
inline float q8_combine(float sx, float sw, std::int32_t acc, float bias) {
  volatile float prod = (sx * sw) * static_cast<float>(acc);
  return prod + bias;
}

// Per-row scale: maxabs / 127, or 0 for an all-zero (or empty) row.
float q8_row_scale(const float* x, std::int64_t n);

// Quantize one row with a precomputed scale. scale == 0 writes all zeros.
void q8_quantize_row(const float* x, std::int64_t n, float scale, std::int8_t* q);

// Dequantize one row: out[i] = scale * q[i].
void q8_dequantize_row(const std::int8_t* q, std::int64_t n, float scale, float* out);

enum class QuantLayout : std::uint8_t {
  kLinearT,  // transposed Linear weight: cols() rows of rows() codes
  kRows,     // row-major table: rows() rows of cols() codes
};

// One quantized parameter. rows/cols are the *logical fp32* shape of the
// original tensor; the storage layout depends on `layout`:
//   kLinearT: q[j*rows + i] = code of W[i,j], scales[j] per output column j
//   kRows:    q[i*cols + j] = code of X[i,j], scales[i] per row i
struct QuantizedTensor {
  QuantLayout layout = QuantLayout::kRows;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<float> scales;
  std::vector<std::int8_t> q;

  // Resident bytes of the quantized form (codes + scales).
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(q.size()) +
           static_cast<std::int64_t>(scales.size()) * 4;
  }
  // Resident bytes of the fp32 original, for the memory-ratio metric.
  std::int64_t fp32_bytes() const { return rows * cols * 4; }
};

// Quantize a Linear weight W(k,n) into kLinearT layout.
QuantizedTensor quantize_linear_weight(const float* w, std::int64_t k, std::int64_t n);

// Quantize a row-major table (Embedding weight) into kRows layout.
QuantizedTensor quantize_rows(const float* x, std::int64_t rows, std::int64_t cols);

// Every quantized parameter of one model, keyed by registration name (the
// same names NodeDef::param_name carries, e.g. "gps0.mpnn.mlp.linear0.w").
struct QuantStore {
  std::map<std::string, QuantizedTensor> entries;

  std::int64_t total_bytes() const;
  std::int64_t total_fp32_bytes() const;
};

// Post-training quantization of `model`: records its inference program,
// compiles it, and quantizes exactly the weights the quantized forward will
// consume — Linear weights feeding fused kLinear/kLinearRelu steps (kLinearT)
// and Embedding tables feeding kGather steps (kRows). Biases and every other
// parameter stay fp32.
QuantStore quantize_model(const CircuitGps& model);

}  // namespace cgps::exec
