#include "exec/runner.hpp"

#include "exec/gps_program.hpp"
#include "exec/plan.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

#include <cstddef>
#include <stdexcept>
#include <utility>

namespace cgps::exec {

namespace {
std::size_t slot_of(bool training, LossKind loss) {
  return (static_cast<std::size_t>(training) << 2) | static_cast<std::size_t>(loss);
}
}  // namespace

PlanRunner::PlanRunner(CircuitGps& model)
    : model_(model), quant_mode_(env_quant_mode()) {}

void PlanRunner::set_prequantized(QuantStore store) {
  if (quant_mode_ != QuantMode::kInt8) return;
  quant_ = std::move(store);
  metric_gauge("exec.quant_bytes").set(static_cast<double>(quant_.total_bytes()));
  quant_ready_.store(true, std::memory_order_release);
}

void PlanRunner::check_freeze_mask() {
  const auto params = model_.named_parameters();
  bool same = rg_mask_.size() == params.size();
  if (same) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (rg_mask_[i] != static_cast<char>(params[i].second.requires_grad())) {
        same = false;
        break;
      }
    }
  }
  if (same) return;
  rg_mask_.clear();
  rg_mask_.reserve(params.size());
  for (const auto& [name, p] : params) rg_mask_.push_back(static_cast<char>(p.requires_grad()));
  for (auto& entry : cache_) entry.reset();
  last_ = nullptr;
}

Executor& PlanRunner::executor_for(bool training, LossKind loss) {
  if (quant_mode_ == QuantMode::kInt8 && (training || loss != LossKind::kNone))
    throw std::runtime_error(
        "exec: CIRCUITGPS_QUANT=int8 is inference-only — training/backward need fp32 "
        "weights; unset the variable (or set it to off) to train");
  check_freeze_mask();
  std::unique_ptr<Executor>& entry = cache_[slot_of(training, loss)];
  if (entry == nullptr) {
    const TraceSpan span("exec.plan_build");
    entry = std::make_unique<Executor>(compile(build_program(model_, training, loss)));
    if (quant_mode_ == QuantMode::kInt8) {
      if (!quant_ready_.load(std::memory_order_acquire)) {
        // No pre-quantized bundle: post-training quantize on first use.
        quant_ = quantize_model(model_);
        metric_gauge("exec.quant_bytes").set(static_cast<double>(quant_.total_bytes()));
        quant_ready_.store(true, std::memory_order_release);
      }
      entry->set_quant(&quant_);
    }
  }
  return *entry;
}

float PlanRunner::forward_loss(const SubgraphBatch& batch, const std::vector<float>& values,
                               float alpha, bool link_task) {
  const LossKind loss = link_task  ? LossKind::kBce
                        : alpha > 0.0f ? LossKind::kWeightedMse
                                       : LossKind::kMse;
  Executor& exec = executor_for(/*training=*/true, loss);
  target_.assign(values.begin(), values.end());
  const float* weight = nullptr;
  if (loss == LossKind::kWeightedMse) {
    weight_.resize(target_.size());
    for (std::size_t i = 0; i < target_.size(); ++i) weight_[i] = 1.0f + alpha * target_[i];
    weight = weight_.data();
  }
  exec.bind(batch, target_.data(), weight);
  {
    const TraceSpan span("exec.run_fwd");
    exec.run_fwd(model_.rng());
  }
  last_ = &exec;
  return exec.value(exec.plan().prog.loss)[0];
}

void PlanRunner::backward() {
  const TraceSpan span("exec.run_bwd");
  last_->run_bwd();
}

const float* PlanRunner::predict(const SubgraphBatch& batch, std::int64_t* rows) {
  Executor& exec = executor_for(/*training=*/false, LossKind::kNone);
  exec.bind(batch, nullptr, nullptr);
  {
    const TraceSpan span("exec.run_fwd");
    exec.run_fwd(model_.rng());
  }
  const int out = exec.plan().prog.output;
  *rows = exec.node_rows(out);
  return exec.value(out);
}

}  // namespace cgps::exec
