// AVX2/FMA backend. This translation unit is the only one compiled with
// -mavx2 -mfma (see src/exec/CMakeLists.txt) so the rest of the build keeps
// its portable baseline; dispatch is a runtime CPU check (backend.cpp).
//
// Accuracy contract: vector lanes + FMA re-associate *within* one output
// element, so results differ from scalar by rounding only (planned AVX2 vs
// eager agrees to ~1e-5 relative, gradcheck-validated). The parallel
// partitioning and the element iteration order are identical to kern::, so
// results are still deterministic at every thread count. No allocation
// anywhere in this file (cgps_lint: exec-kernel-alloc).
#include "exec/backend.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "exec/quant.hpp"
#include "tensor/kernels.hpp"
#include "util/parallel.hpp"

namespace cgps::exec {

namespace {

// Horizontal sum of one 8-lane accumulator (fixed reduction tree, so every
// call rounds identically).
inline float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

// oi[0..n) += xip * wp[0..n), vectorized with FMA.
inline void axpy8(float xip, const float* wp, float* oi, std::int64_t n) {
  const __m256 xv = _mm256_set1_ps(xip);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 o = _mm256_loadu_ps(oi + j);
    _mm256_storeu_ps(oi + j, _mm256_fmadd_ps(xv, _mm256_loadu_ps(wp + j), o));
  }
  for (; j < n; ++j) oi[j] += xip * wp[j];
}

// One output row of A(m,k) B(k,n): zero, then ikj axpy with zero-skip on A —
// the kern::matmul_fwd structure with a vectorized j loop.
inline void row_fwd(const float* ai, const float* b, float* oi, std::int64_t k, std::int64_t n) {
  std::int64_t j = 0;
  const __m256 zero = _mm256_setzero_ps();
  for (; j + 8 <= n; j += 8) _mm256_storeu_ps(oi + j, zero);
  for (; j < n; ++j) oi[j] = 0.0f;
  for (std::int64_t p = 0; p < k; ++p) {
    const float aip = ai[p];
    if (aip == 0.0f) continue;
    axpy8(aip, b + p * n, oi, n);
  }
}

// Exact horizontal sum of eight int32 lanes (integer adds are associative,
// so any reduction order gives the same bits).
inline std::int32_t hsum8i(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 1));
  return _mm_cvtsi128_si32(s);
}

// Exact int32 dot product of two int8 rows: 32 codes per iteration, each
// 16-byte half sign-extended to int16 and multiply-added pairwise into int32
// lanes (products are bounded by 127^2, so the epi16 madd cannot wrap).
// Bitwise identical to the scalar backend's dot_q8 — only the fp32 combine
// in q8_combine rounds, and it is shared.
inline std::int32_t dot_q8(const std::int8_t* x, const std::int8_t* w, std::int64_t k) {
  __m256i acc = _mm256_setzero_si256();
  std::int64_t p = 0;
  for (; p + 32 <= k; p += 32) {
    const __m256i xv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + p));
    const __m256i wv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + p));
    const __m256i xlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(xv));
    const __m256i wlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wv));
    const __m256i xhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(xv, 1));
    const __m256i whi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wv, 1));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xlo, wlo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xhi, whi));
  }
  std::int32_t sum = hsum8i(acc);
  for (; p < k; ++p)
    sum += static_cast<std::int32_t>(x[p]) * static_cast<std::int32_t>(w[p]);
  return sum;
}

class Avx2Backend final : public KernelBackend {
 public:
  const char* name() const override { return "avx2"; }

  void matmul_fwd(const float* a, const float* b, float* o, std::int64_t m, std::int64_t k,
                  std::int64_t n) const override {
    par::parallel_for(0, m, par::grain_for(k * n), [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) row_fwd(a + i * k, b, o + i * n, k, n);
    });
  }

  void matmul_da(const float* dc, const float* b, float* da, std::int64_t rows,
                 std::int64_t inner, std::int64_t cols) const override {
    // Same 4-row blocking as kern::matmul_da, each dot product vectorized.
    par::parallel_for(0, rows, par::grain_for(inner * cols),
                      [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        const float* dci = dc + i * cols;
        float* dai = da + i * inner;
        std::int64_t p = 0;
        for (; p + 4 <= inner; p += 4) {
          const float* b0 = b + p * cols;
          const float* b1 = b0 + cols;
          const float* b2 = b1 + cols;
          const float* b3 = b2 + cols;
          __m256 a0 = _mm256_setzero_ps();
          __m256 a1 = _mm256_setzero_ps();
          __m256 a2 = _mm256_setzero_ps();
          __m256 a3 = _mm256_setzero_ps();
          std::int64_t j = 0;
          for (; j + 8 <= cols; j += 8) {
            const __m256 d = _mm256_loadu_ps(dci + j);
            a0 = _mm256_fmadd_ps(d, _mm256_loadu_ps(b0 + j), a0);
            a1 = _mm256_fmadd_ps(d, _mm256_loadu_ps(b1 + j), a1);
            a2 = _mm256_fmadd_ps(d, _mm256_loadu_ps(b2 + j), a2);
            a3 = _mm256_fmadd_ps(d, _mm256_loadu_ps(b3 + j), a3);
          }
          float acc0 = hsum8(a0);
          float acc1 = hsum8(a1);
          float acc2 = hsum8(a2);
          float acc3 = hsum8(a3);
          for (; j < cols; ++j) {
            const float d = dci[j];
            acc0 += d * b0[j];
            acc1 += d * b1[j];
            acc2 += d * b2[j];
            acc3 += d * b3[j];
          }
          dai[p] += acc0;
          dai[p + 1] += acc1;
          dai[p + 2] += acc2;
          dai[p + 3] += acc3;
        }
        for (; p < inner; ++p) {
          const float* bp = b + p * cols;
          __m256 av = _mm256_setzero_ps();
          std::int64_t j = 0;
          for (; j + 8 <= cols; j += 8)
            av = _mm256_fmadd_ps(_mm256_loadu_ps(dci + j), _mm256_loadu_ps(bp + j), av);
          float acc = hsum8(av);
          for (; j < cols; ++j) acc += dci[j] * bp[j];
          dai[p] += acc;
        }
      }
    });
  }

  void matmul_db(const float* dc, const float* a, float* db, std::int64_t rows,
                 std::int64_t inner, std::int64_t cols) const override {
    // Chunks own dB rows [p0, p1); i-ascending axpy with zero-skip on A,
    // exactly the kern::matmul_db structure.
    par::parallel_for(0, inner, par::grain_for(rows * cols),
                      [&](std::int64_t p0, std::int64_t p1) {
      for (std::int64_t i = 0; i < rows; ++i) {
        const float* dci = dc + i * cols;
        const float* ai = a + i * inner;
        for (std::int64_t p = p0; p < p1; ++p) {
          const float aip = ai[p];
          if (aip == 0.0f) continue;
          axpy8(aip, dci, db + p * cols, cols);
        }
      }
    });
  }

  void linear_fwd(const float* x, const float* w, const float* bias, float* o, std::int64_t m,
                  std::int64_t k, std::int64_t n) const override {
    par::parallel_for(0, m, par::grain_for(k * n), [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        float* oi = o + i * n;
        row_fwd(x + i * k, w, oi, k, n);
        std::int64_t j = 0;
        for (; j + 8 <= n; j += 8)
          _mm256_storeu_ps(oi + j,
                           _mm256_add_ps(_mm256_loadu_ps(oi + j), _mm256_loadu_ps(bias + j)));
        for (; j < n; ++j) oi[j] += bias[j];
      }
    });
  }

  void linear_relu_fwd(const float* x, const float* w, const float* bias, float* o,
                       std::int64_t m, std::int64_t k, std::int64_t n) const override {
    par::parallel_for(0, m, par::grain_for(k * n), [&](std::int64_t i0, std::int64_t i1) {
      const __m256 zero = _mm256_setzero_ps();
      for (std::int64_t i = i0; i < i1; ++i) {
        float* oi = o + i * n;
        row_fwd(x + i * k, w, oi, k, n);
        std::int64_t j = 0;
        for (; j + 8 <= n; j += 8) {
          const __m256 v = _mm256_add_ps(_mm256_loadu_ps(oi + j), _mm256_loadu_ps(bias + j));
          _mm256_storeu_ps(oi + j, _mm256_max_ps(v, zero));
        }
        for (; j < n; ++j) oi[j] = kern::relu1(oi[j] + bias[j]);
      }
    });
  }

  void gate_chain_fwd(const float* e_hat, const float* lm, float* eta, float* msg,
                      std::int64_t count) const override {
    // The sigmoid is exp-bound, not SIMD-bound; the win here is the single
    // fused pass, same as scalar.
    par::parallel_for(0, count, par::grain_for(2), [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        const float s = kern::sigmoid1(e_hat[i]);
        eta[i] = s;
        msg[i] = s * lm[i];
      }
    });
  }

  void linear_fwd_q8(const std::int8_t* xq, const float* sx, const std::int8_t* wq,
                     const float* sw, const float* bias, float* o, std::int64_t m,
                     std::int64_t k, std::int64_t n) const override {
    par::parallel_for(0, m, par::grain_for(k * n), [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        const std::int8_t* xi = xq + i * k;
        float* oi = o + i * n;
        const float sxi = sx[i];
        for (std::int64_t j = 0; j < n; ++j)
          oi[j] = q8_combine(sxi, sw[j], dot_q8(xi, wq + j * k, k), bias[j]);
      }
    });
  }

  void linear_relu_fwd_q8(const std::int8_t* xq, const float* sx, const std::int8_t* wq,
                          const float* sw, const float* bias, float* o, std::int64_t m,
                          std::int64_t k, std::int64_t n) const override {
    par::parallel_for(0, m, par::grain_for(k * n), [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        const std::int8_t* xi = xq + i * k;
        float* oi = o + i * n;
        const float sxi = sx[i];
        for (std::int64_t j = 0; j < n; ++j)
          oi[j] = kern::relu1(q8_combine(sxi, sw[j], dot_q8(xi, wq + j * k, k), bias[j]));
      }
    });
  }
};

}  // namespace

const KernelBackend* avx2_backend() {
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  if (!supported) return nullptr;
  static const Avx2Backend backend;
  return &backend;
}

}  // namespace cgps::exec

#else  // !(__AVX2__ && __FMA__)

namespace cgps::exec {

const KernelBackend* avx2_backend() { return nullptr; }

}  // namespace cgps::exec

#endif
