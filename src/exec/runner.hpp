// PlanRunner: the plan-once/run-many front end used by the trainer when
// CIRCUITGPS_EXEC=planned (DESIGN.md §10). Records + compiles one Plan per
// (training, loss-kind) pair on first use, then re-binds the cached Executor
// to each batch. The cache is invalidated when the parameter freeze mask
// changes (freeze_backbone / reset_head between pre-training and
// fine-tuning), since requires_grad flags are baked into the compiled
// backward schedule.
#pragma once

#include "exec/executor.hpp"
#include "gps/model.hpp"
#include "util/env.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace cgps::exec {

class PlanRunner {
 public:
  // Captures CIRCUITGPS_QUANT at construction: one runner is either fp32 or
  // int8 for its whole life (mixing would invalidate the cached executors).
  explicit PlanRunner(CircuitGps& model);

  // One training forward: picks the loss exactly as the eager trainer does
  // (link task -> BCE-with-logits, alpha > 0 -> weighted MSE, else MSE),
  // binds, runs the forward schedule, and returns the scalar loss. `values`
  // holds one label/target per graph.
  float forward_loss(const SubgraphBatch& batch, const std::vector<float>& values,
                     float alpha, bool link_task);

  // Backward for the most recent forward_loss. Parameter gradients accumulate
  // into the model tensors (call Optimizer::zero_grad first, as with eager).
  void backward();

  // Inference forward (no loss, training=false). Returns the per-graph output
  // column (`*rows` graphs); the pointer is valid until the next call.
  const float* predict(const SubgraphBatch& batch, std::int64_t* rows);

  // Whether this runner serves int8-quantized inference (CIRCUITGPS_QUANT
  // at construction). When true, forward_loss/backward throw.
  bool quantized() const { return quant_mode_ == QuantMode::kInt8; }

  // Adopt pre-quantized weights (model-bundle v3) instead of quantizing on
  // first use. No-op unless quantized(); must be called before the first
  // predict.
  void set_prequantized(QuantStore store);

  // The live quant store (lazily built on first quantized predict), or
  // nullptr when quantization is off / nothing has run yet. Serving reads
  // total_bytes() off it for the stats snapshot, possibly from another
  // thread — hence the acquire pairing with the builder's release store.
  const QuantStore* quant_store() const {
    return quant_ready_.load(std::memory_order_acquire) ? &quant_ : nullptr;
  }

 private:
  Executor& executor_for(bool training, LossKind loss);
  void check_freeze_mask();

  CircuitGps& model_;
  // Slot = (training << 2) | loss kind; only 4 combinations occur in practice
  // (train x {bce, mse, wmse}, eval x none) but the flat array keeps lookup
  // trivial.
  std::array<std::unique_ptr<Executor>, 8> cache_;
  std::vector<char> rg_mask_;      // parameter requires_grad snapshot
  std::vector<float> target_;      // per-batch labels/targets (kept alive through bind)
  std::vector<float> weight_;      // kWeightedMse per-row weights
  Executor* last_ = nullptr;       // executor of the most recent forward_loss

  QuantMode quant_mode_ = QuantMode::kOff;
  QuantStore quant_;  // owned; executors hold pointers into it
  // Set (release) only after quant_ is fully populated; stats readers on
  // other threads gate on it (acquire) before touching quant_.
  std::atomic<bool> quant_ready_{false};
};

}  // namespace cgps::exec
