#include "exec/backend.hpp"

#include "util/env.hpp"
#include "util/logging.hpp"

namespace cgps::exec {

const KernelBackend& select_backend() {
  switch (env_backend()) {
    case BackendKind::kScalar:
      return scalar_backend();
    case BackendKind::kAvx2: {
      if (const KernelBackend* b = avx2_backend()) return *b;
      static const bool warned = [] {
        log_warn("CIRCUITGPS_BACKEND=avx2 requested but this build/CPU lacks "
                 "AVX2+FMA; using the scalar backend");
        return true;
      }();
      (void)warned;
      return scalar_backend();
    }
    case BackendKind::kAuto:
      break;
  }
  if (const KernelBackend* b = avx2_backend()) return *b;
  return scalar_backend();
}

}  // namespace cgps::exec
