#include "exec/quant.hpp"

#include "exec/gps_program.hpp"
#include "exec/plan.hpp"
#include "gps/model.hpp"
#include "util/metrics.hpp"

#include <cmath>

namespace cgps::exec {

float q8_row_scale(const float* x, std::int64_t n) {
  float maxabs = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > maxabs) maxabs = a;
  }
  return maxabs / 127.0f;
}

void q8_quantize_row(const float* x, std::int64_t n, float scale, std::int8_t* q) {
  if (scale == 0.0f) {
    for (std::int64_t i = 0; i < n; ++i) q[i] = 0;
    return;
  }
  const float inv = 1.0f / scale;
  for (std::int64_t i = 0; i < n; ++i) {
    float r = std::nearbyint(x[i] * inv);
    if (r > 127.0f) r = 127.0f;
    if (r < -127.0f) r = -127.0f;
    q[i] = static_cast<std::int8_t>(r);
  }
}

void q8_dequantize_row(const std::int8_t* q, std::int64_t n, float scale, float* out) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = scale * static_cast<float>(q[i]);
}

QuantizedTensor quantize_linear_weight(const float* w, std::int64_t k, std::int64_t n) {
  QuantizedTensor t;
  t.layout = QuantLayout::kLinearT;
  t.rows = k;
  t.cols = n;
  t.scales.resize(static_cast<std::size_t>(n));
  t.q.resize(static_cast<std::size_t>(k * n));
  // Column j of W becomes output row j of the transposed store: gather it
  // into contiguous form, scale, quantize.
  std::vector<float> col(static_cast<std::size_t>(k));
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t i = 0; i < k; ++i) col[static_cast<std::size_t>(i)] = w[i * n + j];
    const float s = q8_row_scale(col.data(), k);
    t.scales[static_cast<std::size_t>(j)] = s;
    q8_quantize_row(col.data(), k, s, t.q.data() + j * k);
  }
  return t;
}

QuantizedTensor quantize_rows(const float* x, std::int64_t rows, std::int64_t cols) {
  QuantizedTensor t;
  t.layout = QuantLayout::kRows;
  t.rows = rows;
  t.cols = cols;
  t.scales.resize(static_cast<std::size_t>(rows));
  t.q.resize(static_cast<std::size_t>(rows * cols));
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* row = x + i * cols;
    const float s = q8_row_scale(row, cols);
    t.scales[static_cast<std::size_t>(i)] = s;
    q8_quantize_row(row, cols, s, t.q.data() + i * cols);
  }
  return t;
}

std::int64_t QuantStore::total_bytes() const {
  std::int64_t sum = 0;
  for (const auto& [name, t] : entries) sum += t.bytes();
  return sum;
}

std::int64_t QuantStore::total_fp32_bytes() const {
  std::int64_t sum = 0;
  for (const auto& [name, t] : entries) sum += t.fp32_bytes();
  return sum;
}

QuantStore quantize_model(const CircuitGps& model) {
  // Compile the inference program and quantize exactly what its quantized
  // forward consumes. The fusion pass turns every biased Linear into a
  // kLinear/kLinearRelu step in inference programs (no backward schedule to
  // veto fusion), so walking fused steps plus kGather covers all of them.
  const Plan plan = compile(build_program(model, /*training=*/false, LossKind::kNone));
  QuantStore store;
  for (const Step& st : plan.fwd) {
    if (st.op == Op::kLinear || st.op == Op::kLinearRelu) {
      const int mm = st.op == Op::kLinear ? st.n1 : st.n2;
      const NodeDef& d = plan.prog.nodes[static_cast<std::size_t>(mm)];
      const NodeDef& w = plan.prog.nodes[static_cast<std::size_t>(d.inputs[1])];
      if (w.op != Op::kParam || store.entries.count(w.param_name) != 0) continue;
      store.entries.emplace(w.param_name,
                            quantize_linear_weight(w.param.data().data(), w.fixed_rows, w.cols));
    } else if (st.op == Op::kGather) {
      const NodeDef& d = plan.prog.nodes[static_cast<std::size_t>(st.n0)];
      const NodeDef& x = plan.prog.nodes[static_cast<std::size_t>(d.inputs[0])];
      if (x.op != Op::kParam || store.entries.count(x.param_name) != 0) continue;
      store.entries.emplace(x.param_name,
                            quantize_rows(x.param.data().data(), x.fixed_rows, x.cols));
    }
  }
  metric_gauge("quant.bytes").set(static_cast<double>(store.total_bytes()));
  metric_gauge("quant.fp32_bytes").set(static_cast<double>(store.total_fp32_bytes()));
  return store;
}

}  // namespace cgps::exec
