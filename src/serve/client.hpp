// Minimal blocking client for the cgps_serve wire protocol. One TCP
// connection, synchronous call() for scripting plus split send()/recv() for
// pipelined load generation (bench_serve_load keeps many requests in flight
// and matches responses by id). Not thread-safe: callers wanting concurrency
// open one ServeClient per thread.
#pragma once

#include "serve/serve.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cgps::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  // Connect to host:port (host is a dotted-quad, e.g. "127.0.0.1").
  // False on resolve/connect failure — error logged.
  bool connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void close();

  // Fire-and-forget send; pair with recv() to collect responses in whatever
  // order the server finishes them. False = connection is dead.
  bool send(const Request& request);
  std::optional<Response> recv();

  // Batched send for pipelined load generation: enqueue() stages frames in a
  // local buffer, flush() pushes them in one write(2). Mixing enqueue() with
  // send() is fine — send() is simply enqueue()+flush().
  void enqueue(const Request& request);
  bool flush();

  // Synchronous request/response. nullopt on any transport failure.
  std::optional<Response> call(const Request& request);

  // Typed kStats round-trip (protocol v2): sends a stats probe and returns
  // the server's cgps-serve-stats-v1 JSON document. Issue it only when no
  // other requests are in flight on this connection — any regular response
  // frame arriving before the stats frame is consumed and dropped. nullopt
  // on transport failure or an unparseable frame.
  std::optional<std::string> fetch_stats();

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> out_buf_;
  // Inbound stream buffer: one read(2) may deliver many pipelined response
  // frames; recv() slices them out without further syscalls.
  std::vector<std::uint8_t> in_buf_;
  std::size_t in_pos_ = 0;
};

}  // namespace cgps::serve
