#include "serve/server.hpp"

#include "serve/protocol.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace cgps::serve {

namespace {

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

// A peer that disappears mid-write must not SIGPIPE the daemon; EPIPE from
// write() is handled per connection instead. Installed once.
void ignore_sigpipe() {
  static const int installed = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return 0;
  }();
  (void)installed;
}

}  // namespace

ServeServer::ServeServer(ServeCore& core, int port)
    : core_(core), requested_port_(port) {}

ServeServer::~ServeServer() { stop(); }

bool ServeServer::start() {
  ignore_sigpipe();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    log_error("cgps_serve: socket() failed: ", std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(requested_port_));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    log_error("cgps_serve: bind(127.0.0.1:", requested_port_,
              ") failed: ", std::strerror(errno));
    close_fd(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) < 0) {
    log_error("cgps_serve: listen() failed: ", std::strerror(errno));
    close_fd(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = static_cast<int>(ntohs(bound.sin_port));
  // Touch the gauge so stats snapshots report 0 before the first accept.
  metric_gauge("serve.active_connections").set(static_cast<double>(active_conns_.load()));
  // One write(2) per connection per batching cycle instead of one per
  // response: responses buffer in Connection::out_buf until this fires.
  core_.set_cycle_hook([this] { flush_all(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void ServeServer::flush_connection(Connection& conn) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  if (conn.out_buf.empty() || !conn.open.load()) return;
  if (!write_all_bytes(conn.fd, conn.out_buf.data(), conn.out_buf.size()))
    conn.open.store(false);
  conn.out_buf.clear();
}

void ServeServer::flush_all() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& conn : conns_) flush_connection(*conn);
}

void ServeServer::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // The hook captures `this`; the core may outlive this server.
  core_.set_cycle_hook({});
  // Closing the listener unblocks accept(); shutting connection fds unblocks
  // their blocked read_frame calls.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  close_fd(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (conn->open.exchange(false)) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers.swap(readers_);
  }
  for (std::thread& t : readers)
    if (t.joinable()) t.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) close_fd(conn->fd);
    conns_.clear();
  }
}

void ServeServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop) or fatal error
    }
    if (stopping_.load()) {
      close_fd(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    metric_counter("serve.connections").add(1);
    metric_gauge("serve.active_connections")
        .set(static_cast<double>(active_conns_.fetch_add(1, std::memory_order_relaxed) + 1));
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void ServeServer::reader_loop(const std::shared_ptr<Connection>& conn) {
  // Buffered frame parsing: one read(2) pulls however many pipelined frames
  // the kernel has queued; scan_frame slices them out without further
  // syscalls. The compacting erase is amortized-cheap (whole prefix at once).
  std::vector<std::uint8_t> stream;
  std::vector<std::uint8_t> payload;
  std::size_t pos = 0;
  std::uint8_t chunk[64 * 1024];
  bool protocol_error = false;
  while (!protocol_error) {
    const ssize_t got = ::read(conn->fd, chunk, sizeof(chunk));
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (got == 0) break;  // peer closed
    stream.insert(stream.end(), chunk, chunk + got);
    bool submitted = false;
    for (;;) {
      const FrameScan scan = scan_frame(stream, pos, payload);
      if (scan == FrameScan::kNeedMore) break;
      std::optional<Request> request;
      if (scan == FrameScan::kFrame) request = decode_request(payload);
      if (!request.has_value()) {
        // Corrupt length prefix or unparseable payload: answer kError and
        // drop the connection — the stream offset can no longer be trusted.
        Response err;
        err.status = Status::kError;
        {
          std::lock_guard<std::mutex> lock(conn->write_mu);
          append_frame(conn->out_buf, encode_response(err));
        }
        protocol_error = true;
        break;
      }
      if (request->task == TaskKind::kStats) {
        // Live introspection: answered inline with the JSON stats frame,
        // never admitted to the batch queue (mirrors kInfo). Assembly reads
        // only atomics, so polling cannot perturb in-flight batches.
        metric_counter("serve.stats_requests").add(1);
        const std::string stats = core_.stats_json();
        {
          std::lock_guard<std::mutex> lock(conn->write_mu);
          append_frame(conn->out_buf, encode_stats_response(request->id, stats));
        }
        submitted = true;  // inline flush below, like other admission replies
        continue;
      }
      // The callback may fire on this thread (inline rejections/kInfo) or on
      // the batching thread (served requests); the connection outlives both
      // via shared_ptr and the out_buf is serialized by write_mu. Served
      // responses are flushed at the next batch boundary (cycle hook).
      core_.submit(*request, [conn](const Response& response) {
        if (!conn->open.load()) return;
        std::lock_guard<std::mutex> lock(conn->write_mu);
        append_frame(conn->out_buf, encode_response(response));
      });
      submitted = true;
    }
    stream.erase(stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(pos));
    pos = 0;
    // Anything answered inline (kInfo, validation failures, backpressure)
    // must not wait for a batching cycle that may never come.
    if (submitted || protocol_error) flush_connection(*conn);
  }
  flush_connection(*conn);
  if (conn->open.exchange(false)) ::shutdown(conn->fd, SHUT_RDWR);
  metric_gauge("serve.active_connections")
      .set(static_cast<double>(active_conns_.fetch_sub(1, std::memory_order_relaxed) - 1));
}

}  // namespace cgps::serve
