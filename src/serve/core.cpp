#include "serve/core.hpp"

#include "exec/gps_program.hpp"
#include "serve/access_log.hpp"
#include "serve/protocol.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "train/dataset.hpp"
#include "train/trainer.hpp"
#include "util/env.hpp"
#include "util/json_writer.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

#include <algorithm>
#include <cmath>

namespace cgps::serve {

namespace {

// 1-2-5 ladder, 100 µs .. 20 s, in seconds: the serve.latency histogram the
// p50/p95/p99 SLO quantiles are interpolated from (DESIGN.md §8).
std::vector<double> latency_bounds() {
  std::vector<double> bounds;
  for (double decade = 1e-4; decade < 20.0; decade *= 10.0)
    for (const double step : {1.0, 2.0, 5.0}) bounds.push_back(decade * step);
  return bounds;
}

std::vector<double> batch_size_bounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

Histogram& latency_histogram() {
  static Histogram& h = metric_histogram("serve.latency", latency_bounds());
  return h;
}

Histogram& batch_size_histogram() {
  static Histogram& h = metric_histogram("serve.batch_size", batch_size_bounds());
  return h;
}

// Resident bytes of one served design: node/edge tables, both CSR adjacency
// directions, and the raw X_C feature rows. Computed from the graph's public
// counts (exact for the vectors' payloads; allocator overhead excluded).
std::int64_t design_resident_bytes(const ServedDesign& d) {
  const std::int64_t n = d.graph.num_nodes();
  const std::int64_t e = d.graph.num_edges();
  const std::int64_t node_tables = n * 1;                       // NodeType
  const std::int64_t edge_tables = e * (4 + 4 + 1);             // a, b, type
  const std::int64_t adjacency = (n + 1) * 8 + 2 * e * (4 + 8); // ptr, node, edge
  const std::int64_t features =
      static_cast<std::int64_t>(d.xc.size()) * kXcDim * 4;
  return node_tables + edge_tables + adjacency + features;
}

// fp32 resident bytes of the model's parameters.
std::int64_t model_fp32_bytes(const CircuitGps& model) {
  std::int64_t total = 0;
  for (const auto& [name, p] : model.named_parameters()) total += p.numel() * 4;
  return total;
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kTimeout: return "timeout";
    case Status::kOverloaded: return "overloaded";
    case Status::kBadDesign: return "bad_design";
    case Status::kBadNode: return "bad_node";
    case Status::kShutdown: return "shutdown";
    case Status::kError: return "error";
  }
  return "?";
}

const char* task_kind_name(TaskKind k) {
  switch (k) {
    case TaskKind::kLink: return "link";
    case TaskKind::kEdgeCap: return "edge_cap";
    case TaskKind::kNodeCap: return "node_cap";
    case TaskKind::kInfo: return "info";
    case TaskKind::kStats: return "stats";
  }
  return "?";
}

ServeCore::ServeCore(CircuitGps& model, XcNormalizer normalizer,
                     std::vector<ServedDesign> designs, ServeOptions options)
    : model_(model),
      normalizer_(std::move(normalizer)),
      designs_(std::move(designs)),
      options_(options),
      batch_options_(batch_options_for(model.config())),
      window_latency_(latency_bounds()) {
  options_.max_batch = std::max(1, options_.max_batch);
  options_.queue_cap = std::max(1, options_.queue_cap);
  if (options_.default_deadline_us <= 0) options_.default_deadline_us = 100000;
  model_.set_training(false);
  planned_ = env_exec_mode() == ExecMode::kPlanned && exec::program_supported(model.config());
  if (planned_) runner_ = std::make_unique<exec::PlanRunner>(model_);
  start_us_ = trace::now_us();
  // Touch the instruments once so reports include them even before traffic.
  latency_histogram();
  batch_size_histogram();
  metric_gauge("serve.queue_depth").set(0.0);
  std::int64_t resident = 0;
  for (const ServedDesign& d : designs_) resident += design_resident_bytes(d);
  metric_gauge("serve.resident_bytes").set(static_cast<double>(resident));
}

ServeCore::~ServeCore() { stop(); }

void ServeCore::set_prequantized(exec::QuantStore store) {
  if (quantized()) runner_->set_prequantized(std::move(store));
}

void ServeCore::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopping_) return;
  started_ = true;
  thread_ = std::thread([this] { loop(); });
}

void ServeCore::stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    worker.swap(thread_);
  }
  cv_.notify_all();
  if (worker.joinable()) worker.join();
  // Without a batching thread the queue may still hold accepted work
  // (submit-before-start in tests); drain it here so "accepted implies
  // answered" holds on every path.
  while (run_cycle() > 0) {
  }
}

void ServeCore::set_cycle_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  cycle_hook_ = std::move(hook);
}

bool ServeCore::submit(const Request& request, ResponseCallback done) {
  Pending p;
  p.request = request;
  p.done = std::move(done);
  p.arrival_us = trace::now_us();
  p.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t budget =
      request.deadline_us > 0 ? request.deadline_us : options_.default_deadline_us;
  p.deadline_us = p.arrival_us + budget;

  metric_counter("serve.requests").add(1);
  if (request.design >= designs_.size()) {
    reply(p, Status::kBadDesign, 0.0f, 0.0);
    return true;
  }
  const ServedDesign& design = designs_[request.design];
  if (request.task == TaskKind::kInfo) {
    // Metadata probe: answered at admission, never queued.
    reply(p, Status::kOk, static_cast<float>(design.graph.num_nodes()),
          static_cast<double>(designs_.size()));
    return true;
  }
  if (request.task == TaskKind::kStats) {
    // The fixed-layout response cannot carry the snapshot; transport front
    // ends answer kStats with the JSON stats frame before admission
    // (serve/server.cpp), and in-process callers use stats_json() directly.
    // A kStats that still reaches submit() gets an empty inline OK.
    reply(p, Status::kOk, 0.0f, static_cast<double>(designs_.size()));
    return true;
  }
  const std::int32_t n = static_cast<std::int32_t>(design.graph.num_nodes());
  const bool needs_b = request.task == TaskKind::kLink || request.task == TaskKind::kEdgeCap;
  if (request.node_a < 0 || request.node_a >= n ||
      (needs_b && (request.node_b < 0 || request.node_b >= n))) {
    reply(p, Status::kBadNode, 0.0f, 0.0);
    return true;
  }

  // Admission decision under the lock, rejection callback outside it: the
  // callback must never run while the queue mutex is held.
  Status rejected = Status::kOk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejected = Status::kShutdown;
    } else if (queue_.size() >= static_cast<std::size_t>(options_.queue_cap)) {
      rejected = Status::kOverloaded;
    } else {
      queue_.push_back(std::move(p));
      metric_gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
    }
  }
  if (rejected != Status::kOk) {
    if (rejected == Status::kOverloaded) metric_counter("serve.rejected").add(1);
    reply(p, rejected, 0.0f, 0.0);
    return false;
  }
  cv_.notify_one();
  return true;
}

Response ServeCore::predict(const Request& request) {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  Response out;
  submit(request, [&](const Response& r) {
    std::lock_guard<std::mutex> lock(mu);
    out = r;
    ready = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ready; });
  return out;
}

int ServeCore::run_cycle() {
  std::vector<Pending> taken;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t k =
        std::min(queue_.size(), static_cast<std::size_t>(options_.max_batch));
    taken.assign(std::make_move_iterator(queue_.begin()),
                 std::make_move_iterator(queue_.begin() + static_cast<std::ptrdiff_t>(k)));
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(k));
    metric_gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
  }
  return serve_some(taken);
}

void ServeCore::loop() {
  for (;;) {
    std::vector<Pending> taken;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping_ && drained
      const std::size_t k =
          std::min(queue_.size(), static_cast<std::size_t>(options_.max_batch));
      taken.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.begin() + static_cast<std::ptrdiff_t>(k)));
      queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(k));
      metric_gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
    }
    serve_some(taken);
  }
}

// Shed expired requests, then serve the survivors grouped by design (one
// coalesced forward per design — make_batch normalizes X_C rows of exactly
// one source graph). Returns the number of requests answered.
int ServeCore::serve_some(std::vector<Pending>& taken) {
  if (taken.empty()) return 0;
  const std::int64_t now = trace::now_us();
  std::vector<Pending*> live;
  live.reserve(taken.size());
  for (Pending& p : taken) {
    p.queue_us = now - p.arrival_us;
    if (p.deadline_us < now) {
      metric_counter("serve.timeouts").add(1);
      window_shed_.add(now / 1000000);
      reply(p, Status::kTimeout, 0.0f, 0.0);
    } else {
      live.push_back(&p);
    }
  }
  // Group by design, preserving arrival order within each group.
  for (std::size_t d = 0; d < designs_.size() && !live.empty(); ++d) {
    std::vector<Pending*> group;
    std::vector<Pending*> rest;
    for (Pending* p : live) {
      (p->request.design == d ? group : rest).push_back(p);
    }
    if (!group.empty()) process_group(group);
    live.swap(rest);
  }
  // Batch boundary: let the transport flush everything this cycle replied.
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    hook = cycle_hook_;
  }
  if (hook) hook();
  return static_cast<int>(taken.size());
}

void ServeCore::process_group(std::vector<Pending*>& group) {
  const TraceSpan span("serve.batch");
  const ServedDesign& design = designs_[group.front()->request.design];
  const std::size_t k = group.size();
  batch_size_histogram().observe(static_cast<double>(k));
  metric_counter("serve.batches").add(1);
  const std::int64_t batch_id = next_batch_id_.fetch_add(1, std::memory_order_relaxed);
  for (Pending* p : group) {
    p->batch_id = batch_id;
    p->batch_size = static_cast<int>(k);
  }

  // Enclosing-subgraph extraction + DSPD for every request in the group,
  // fanned out on the shared work pool (requests are independent).
  std::vector<Subgraph> subgraphs(k);
  const std::int64_t extract_start = trace::now_us();
  {
    const TraceSpan extract_span("serve.extract");
    par::parallel_for(0, static_cast<std::int64_t>(k), 1,
                      [&](std::int64_t b0, std::int64_t b1) {
                        for (std::int64_t i = b0; i < b1; ++i) {
                          const Request& r = group[static_cast<std::size_t>(i)]->request;
                          const std::int32_t b =
                              r.task == TaskKind::kNodeCap ? -1 : r.node_b;
                          subgraphs[static_cast<std::size_t>(i)] = extract_enclosing_subgraph(
                              design.graph, r.node_a, b, options_.subgraph);
                        }
                      });
  }
  const std::int64_t extract_us = trace::now_us() - extract_start;
  for (Pending* p : group) p->extract_us = extract_us;

  std::vector<const Subgraph*> refs(k);
  for (std::size_t i = 0; i < k; ++i) refs[i] = &subgraphs[i];
  SubgraphBatch batch;
  {
    const TraceSpan assemble_span("serve.assemble");
    batch = make_batch(refs, design.xc, normalizer_, batch_options_);
  }

  // One fused forward for the whole group. Mirrors train/trainer.cpp
  // run_inference: planned executor when enabled+supported, eager otherwise.
  const std::int64_t forward_start = trace::now_us();
  const TraceSpan forward_span("serve.forward");
  InferenceGuard guard;
  std::vector<float> raw(k, 0.0f);
  if (planned_) {
    std::int64_t rows = 0;
    const float* out = runner_->predict(batch, &rows);
    for (std::size_t i = 0; i < k && i < static_cast<std::size_t>(rows); ++i)
      raw[i] = out[i];
  } else {
    const Tensor out = model_.forward(batch);
    for (std::size_t i = 0; i < k && i < out.data().size(); ++i) raw[i] = out.data()[i];
  }
  const std::int64_t forward_us = trace::now_us() - forward_start;
  for (Pending* p : group) p->forward_us = forward_us;

  for (std::size_t i = 0; i < k; ++i) {
    Pending& p = *group[i];
    if (p.request.task == TaskKind::kLink) {
      reply(p, Status::kOk, kern::sigmoid1(raw[i]), 0.0);
    } else {
      const float norm_cap = std::clamp(raw[i], 0.0f, 1.0f);
      reply(p, Status::kOk, norm_cap, denormalize_cap(norm_cap));
    }
  }
}

void ServeCore::reply(Pending& p, Status status, float value, double cap_farads) {
  Response r;
  r.id = p.request.id;
  r.status = status;
  r.value = value;
  r.cap_farads = cap_farads;
  finish(p, r);
}

void ServeCore::finish(Pending& p, const Response& r) {
  Response out = r;
  const std::int64_t now = trace::now_us();
  out.server_us = now - p.arrival_us;
  if (out.status == Status::kOk) metric_counter("serve.ok").add(1);
  const double latency_s = static_cast<double>(out.server_us) * 1e-6;
  latency_histogram().observe(latency_s);
  const std::int64_t now_s = now / 1000000;
  window_done_.add(now_s);
  if (out.status == Status::kOk) window_ok_.add(now_s);
  if (out.status == Status::kOverloaded) window_rejected_.add(now_s);
  window_latency_.observe(now_s, latency_s);
  AccessRecord rec;
  rec.trace_id = p.trace_id;
  rec.wire_id = p.request.id;
  rec.status = out.status;
  rec.task = p.request.task;
  rec.design = p.request.design;
  rec.queue_us = p.queue_us;
  rec.extract_us = p.extract_us;
  rec.forward_us = p.forward_us;
  rec.total_us = out.server_us;
  rec.batch_id = p.batch_id;
  rec.batch_size = p.batch_size;
  log_access(rec);
  if (p.done) p.done(out);
}

namespace {

// One window block of the stats document: throughput and tail latency over
// the last `window_s` seconds. Rates are per second; shed/reject rates are
// fractions of the window's answered requests.
void write_window(JsonWriter& w, const char* key, int window_s, std::int64_t now_s,
                  const RollingCounter& done, const RollingCounter& ok,
                  const RollingCounter& shed, const RollingCounter& rejected,
                  const RollingHistogram& latency) {
  const std::int64_t n_done = done.sum_window(now_s, window_s);
  const std::int64_t n_ok = ok.sum_window(now_s, window_s);
  const std::int64_t n_shed = shed.sum_window(now_s, window_s);
  const std::int64_t n_rejected = rejected.sum_window(now_s, window_s);
  const Histogram::Snapshot snap = latency.merged(now_s, window_s);
  const double denom = n_done > 0 ? static_cast<double>(n_done) : 1.0;
  w.key(key).begin_object();
  w.field("window_s", window_s);
  w.field("done", n_done);
  w.field("ok", n_ok);
  w.field("shed", n_shed);
  w.field("rejected", n_rejected);
  w.field("qps", static_cast<double>(n_done) / window_s);
  w.field("ok_qps", static_cast<double>(n_ok) / window_s);
  w.field("shed_rate", static_cast<double>(n_shed) / denom);
  w.field("reject_rate", static_cast<double>(n_rejected) / denom);
  w.field("p50_s", estimate_quantile(snap, 0.50));
  w.field("p95_s", estimate_quantile(snap, 0.95));
  w.field("p99_s", estimate_quantile(snap, 0.99));
  w.end_object();
}

}  // namespace

std::string ServeCore::stats_json() const {
  const std::int64_t now = trace::now_us();
  const std::int64_t now_s = now / 1000000;
  JsonWriter w;
  w.begin_object();
  w.field("schema", "cgps-serve-stats-v1");
  w.field("proto_version", static_cast<std::int64_t>(kProtocolVersion));
  w.field("uptime_s", static_cast<double>(now - start_us_) * 1e-6);
  w.field("build", identity_.build);
  w.field("checkpoint", identity_.checkpoint);
  w.field("executor", planned_ ? "planned" : "eager");
  w.field("quant", quantized() ? "int8" : "off");
  w.field("model_fp32_bytes", model_fp32_bytes(model_));
  // Quantized weight bytes resident alongside fp32 (0 until the first
  // quantized forward builds the store, or a v3 bundle pre-loads it).
  const exec::QuantStore* store = runner_ != nullptr ? runner_->quant_store() : nullptr;
  w.field("model_quant_bytes", store != nullptr ? store->total_bytes() : std::int64_t{0});
  w.field("max_batch", options_.max_batch);
  w.field("queue_cap", options_.queue_cap);
  w.field("default_deadline_ms", static_cast<double>(options_.default_deadline_us) * 1e-3);
  w.field("rss_bytes", current_rss_bytes());
  w.key("designs").begin_array();
  for (const ServedDesign& d : designs_) {
    w.begin_object();
    w.field("name", d.name);
    w.field("nodes", d.graph.num_nodes());
    w.field("edges", d.graph.num_edges());
    w.field("resident_bytes", design_resident_bytes(d));
    w.end_object();
  }
  w.end_array();
  w.key("windows").begin_object();
  write_window(w, "10s", 10, now_s, window_done_, window_ok_, window_shed_,
               window_rejected_, window_latency_);
  write_window(w, "60s", 60, now_s, window_done_, window_ok_, window_shed_,
               window_rejected_, window_latency_);
  w.end_object();
  w.key("registry");
  MetricsRegistry::instance().write_json(w);
  w.end_object();
  return w.str();
}

}  // namespace cgps::serve
