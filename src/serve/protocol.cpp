#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <unistd.h>

namespace cgps::serve {

namespace {

// Little-endian byte-vector writers/readers. memcpy through a fixed-size
// buffer keeps this strict-aliasing-clean; the host is little-endian on
// every platform we build for, and the explicit byte order makes the wire
// format portable anyway.
template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

template <typename T>
bool get(const std::vector<std::uint8_t>& in, std::size_t& at, T& v) {
  if (at + sizeof(T) > in.size()) return false;
  std::memcpy(&v, in.data() + at, sizeof(T));
  at += sizeof(T);
  return true;
}

// Shared version check: any version this build can decode. Old (v1) peers
// stay accepted; unknown future versions are rejected rather than
// misinterpreted.
bool version_ok(std::uint8_t version) {
  return version >= kMinProtocolVersion && version <= kProtocolVersion;
}

}  // namespace

std::vector<std::uint8_t> encode_request(const Request& request) {
  std::vector<std::uint8_t> out;
  out.reserve(31);
  put(out, kRequestMagic);
  // Layout unchanged since v1; the v1 stamp keeps old servers answering.
  put(out, kMinProtocolVersion);
  put(out, request.id);
  put(out, request.design);
  put(out, static_cast<std::uint8_t>(request.task));
  put(out, request.node_a);
  put(out, request.node_b);
  put(out, request.deadline_us);
  return out;
}

std::vector<std::uint8_t> encode_response(const Response& response) {
  std::vector<std::uint8_t> out;
  out.reserve(34);
  put(out, kResponseMagic);
  // Layout unchanged since v1; the v1 stamp keeps old clients reading.
  put(out, kMinProtocolVersion);
  put(out, response.id);
  put(out, static_cast<std::uint8_t>(response.status));
  put(out, response.value);
  put(out, response.cap_farads);
  put(out, response.server_us);
  return out;
}

std::optional<Request> decode_request(const std::vector<std::uint8_t>& payload) {
  std::size_t at = 0;
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  Request r;
  std::uint8_t task = 0;
  if (!get(payload, at, magic) || magic != kRequestMagic) return std::nullopt;
  if (!get(payload, at, version) || !version_ok(version)) return std::nullopt;
  if (!get(payload, at, r.id) || !get(payload, at, r.design) || !get(payload, at, task) ||
      !get(payload, at, r.node_a) || !get(payload, at, r.node_b) ||
      !get(payload, at, r.deadline_us))
    return std::nullopt;
  if (task > static_cast<std::uint8_t>(TaskKind::kStats)) return std::nullopt;
  r.task = static_cast<TaskKind>(task);
  return r;
}

std::optional<Response> decode_response(const std::vector<std::uint8_t>& payload) {
  std::size_t at = 0;
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  Response r;
  std::uint8_t status = 0;
  if (!get(payload, at, magic) || magic != kResponseMagic) return std::nullopt;
  if (!get(payload, at, version) || !version_ok(version)) return std::nullopt;
  if (!get(payload, at, r.id) || !get(payload, at, status) || !get(payload, at, r.value) ||
      !get(payload, at, r.cap_farads) || !get(payload, at, r.server_us))
    return std::nullopt;
  if (status > static_cast<std::uint8_t>(Status::kError)) return std::nullopt;
  r.status = static_cast<Status>(status);
  return r;
}

std::vector<std::uint8_t> encode_stats_response(std::uint64_t id, std::string_view json) {
  std::vector<std::uint8_t> out;
  out.reserve(13 + json.size());
  put(out, kStatsMagic);
  put(out, kProtocolVersion);
  put(out, id);
  const std::size_t at = out.size();
  out.resize(at + json.size());
  std::memcpy(out.data() + at, json.data(), json.size());
  return out;
}

std::optional<StatsResponse> decode_stats_response(const std::vector<std::uint8_t>& payload) {
  std::size_t at = 0;
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  StatsResponse r;
  if (!get(payload, at, magic) || magic != kStatsMagic) return std::nullopt;
  if (!get(payload, at, version) || !version_ok(version)) return std::nullopt;
  if (!get(payload, at, r.id)) return std::nullopt;
  // Everything after the prologue is the JSON document (the frame's length
  // prefix bounds it; an empty document is not a valid snapshot).
  if (at >= payload.size()) return std::nullopt;
  r.json.assign(reinterpret_cast<const char*>(payload.data()) + at, payload.size() - at);
  return r;
}

std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 4);
  put(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

namespace {

bool read_exact(int fd, std::uint8_t* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, data + done, n - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF mid-frame (or clean close at n=start)
    done += static_cast<std::size_t>(got);
  }
  return true;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t put_n = ::write(fd, data + done, n - done);
    if (put_n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(put_n);
  }
  return true;
}

}  // namespace

FrameScan scan_frame(const std::vector<std::uint8_t>& buffer, std::size_t& pos,
                     std::vector<std::uint8_t>& payload, std::uint32_t max_frame_bytes) {
  if (buffer.size() - pos < 4) return FrameScan::kNeedMore;
  std::uint32_t length = 0;
  std::memcpy(&length, buffer.data() + pos, 4);
  if (length == 0 || length > max_frame_bytes) return FrameScan::kCorrupt;
  if (buffer.size() - pos < 4 + static_cast<std::size_t>(length))
    return FrameScan::kNeedMore;
  payload.assign(buffer.begin() + static_cast<std::ptrdiff_t>(pos) + 4,
                 buffer.begin() + static_cast<std::ptrdiff_t>(pos) + 4 + length);
  pos += 4 + static_cast<std::size_t>(length);
  return FrameScan::kFrame;
}

void append_frame(std::vector<std::uint8_t>& buffer,
                  const std::vector<std::uint8_t>& payload) {
  const std::size_t at = buffer.size();
  buffer.resize(at + 4 + payload.size());
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  std::memcpy(buffer.data() + at, &length, 4);
  std::memcpy(buffer.data() + at + 4, payload.data(), payload.size());
}

bool write_all_bytes(int fd, const std::uint8_t* data, std::size_t n) {
  return write_all(fd, data, n);
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint8_t prefix[4];
  if (!read_exact(fd, prefix, 4)) return false;
  std::uint32_t length = 0;
  std::memcpy(&length, prefix, 4);
  if (length == 0 || length > kMaxFrameBytes) return false;
  payload.resize(length);
  return read_exact(fd, payload.data(), length);
}

bool write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> framed = frame(payload);
  return write_all(fd, framed.data(), framed.size());
}

}  // namespace cgps::serve
