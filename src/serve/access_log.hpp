// Per-request access log of the serving core (DESIGN.md §11): one
// cgps-serve-access-v1 JSONL record per answered request, appended to
// CIRCUITGPS_SERVE_ACCESS_LOG and rotated under the CIRCUITGPS_RUN_LOG_MAX_MB
// cap (the run-log machinery in util/json_writer). Every record carries the
// monotonic trace id assigned at admission plus the batch id it was coalesced
// into, so a slow request can be tied back to the exact batch's
// serve.batch/extract/forward spans. Requests slower than
// CIRCUITGPS_SERVE_SLOW_MS are additionally logged at warn level — that path
// works even with the access log unset. Write-only observer: records are
// emitted after the response values are final, so logging cannot perturb
// results (the scalar-backend bit-identity contract of serve/core.hpp).
#pragma once

#include "serve/serve.hpp"

#include <cstdint>

namespace cgps::serve {

struct AccessRecord {
  std::uint64_t trace_id = 0;  // monotonic per-core admission id
  std::uint64_t wire_id = 0;   // client-chosen request id (echoed on the wire)
  Status status = Status::kOk;
  TaskKind task = TaskKind::kLink;
  std::uint16_t design = 0;
  std::int64_t queue_us = 0;    // admission -> dequeue (0 for inline answers)
  std::int64_t extract_us = 0;  // batch-level subgraph extraction wall time
  std::int64_t forward_us = 0;  // batch-level fused forward wall time
  std::int64_t total_us = 0;    // admission -> reply (the wire's server_us)
  std::int64_t batch_id = 0;    // 0 = answered inline, never batched
  int batch_size = 0;
};

// True when CIRCUITGPS_SERVE_ACCESS_LOG names a path (read fresh per call).
bool access_log_enabled();

// Append one record (when enabled) and emit the slow-request warning (when
// the threshold is set and exceeded). Thread-safe; call once per request.
void log_access(const AccessRecord& record);

}  // namespace cgps::serve
