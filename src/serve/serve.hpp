// Shared vocabulary of the cgps_serve inference service (DESIGN.md §11):
// request/response records, status codes, and the served-design bundle the
// batching core predicts against. The wire encoding of these records lives
// in serve/protocol.hpp; the batching loop in serve/core.hpp.
#pragma once

#include "graph/circuit_graph.hpp"  // kXcDim
#include "graph/hetero_graph.hpp"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace cgps::serve {

// What a request asks the model for. kInfo and kStats are answered
// synchronously at admission (design discovery / live introspection — they
// never enter the batch queue); the other kinds ride the batching loop.
enum class TaskKind : std::uint8_t {
  kLink = 0,     // P(coupling exists) for (node_a, node_b), sigmoid of the logit
  kEdgeCap = 1,  // normalized coupling capacitance for (node_a, node_b)
  kNodeCap = 2,  // normalized ground capacitance for node_a (node_b ignored)
  kInfo = 3,     // design metadata probe; never enters the queue
  kStats = 4,    // JSON stats snapshot (protocol v2); never enters the queue
};

enum class Status : std::uint8_t {
  kOk = 0,
  kTimeout = 1,     // deadline expired before the batch loop reached it (shed)
  kOverloaded = 2,  // admission queue at capacity (backpressure)
  kBadDesign = 3,   // design index not loaded
  kBadNode = 4,     // node id outside the design's node table
  kShutdown = 5,    // submitted after stop() began
  kError = 6        // malformed frame / internal failure (socket layer)
};

const char* status_name(Status s);
const char* task_kind_name(TaskKind k);

struct Request {
  std::uint64_t id = 0;        // echoed verbatim in the response
  std::uint16_t design = 0;    // index into the server's loaded designs
  TaskKind task = TaskKind::kLink;
  std::int32_t node_a = -1;    // anchor m (graph node id of the design)
  std::int32_t node_b = -1;    // anchor n; ignored for kNodeCap / kInfo
  // Latency budget in microseconds, measured from admission; 0 = server
  // default. Requests still queued past their budget are shed with kTimeout.
  std::int64_t deadline_us = 0;
};

struct Response {
  std::uint64_t id = 0;
  Status status = Status::kOk;
  // kLink: probability in [0,1]. kEdgeCap/kNodeCap: normalized capacitance
  // in [0,1] (the training-target scale). kInfo: node count of the design.
  float value = 0.0f;
  // Denormalized capacitance in farads for the cap tasks (0 otherwise;
  // design count for kInfo).
  double cap_farads = 0.0;
  // Server-side latency: admission -> reply, microseconds.
  std::int64_t server_us = 0;
};

// One design the service answers queries about: the structural graph that
// enclosing subgraphs are extracted from (the link-injected graph, matching
// the training-time SEAL setup) plus the raw X_C feature rows the batch
// assembler normalizes.
struct ServedDesign {
  std::string name;
  HeteroGraph graph;
  std::vector<std::array<float, kXcDim>> xc;  // aligned with graph node ids
};

}  // namespace cgps::serve
