// Wire framing for cgps_serve (DESIGN.md §11): every message is one
// length-prefixed frame — a little-endian u32 payload length followed by the
// payload — so a reader never needs lookahead. Payloads are fixed-layout
// little-endian records with a magic + version prologue; encode/decode are
// pure byte-vector transforms (no sockets) so the framing is unit-testable
// and fuzzable without I/O.
//
//   request payload  (31 bytes): "CGRQ" u8:ver u64:id u16:design u8:task
//                                i32:node_a i32:node_b i64:deadline_us
//   response payload (34 bytes): "CGRS" u8:ver u64:id u8:status f32:value
//                                f64:cap_farads i64:server_us
//   stats payload  (13+n bytes): "CGST" u8:ver u64:id + n bytes of UTF-8
//                                JSON (cgps-serve-stats-v1), answering a
//                                kStats request (protocol v2)
#pragma once

#include "serve/serve.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cgps::serve {

inline constexpr std::uint32_t kRequestMagic = 0x51524743;   // "CGRQ"
inline constexpr std::uint32_t kResponseMagic = 0x53524743;  // "CGRS"
inline constexpr std::uint32_t kStatsMagic = 0x54534743;     // "CGST"
// v2 added the kStats task and its JSON stats frame. Decoders accept any
// version in [kMinProtocolVersion, kProtocolVersion]; encoders stamp each
// payload with the version its *layout* last changed in — requests and
// responses are byte-identical to v1 and keep the v1 stamp, so mixed-version
// fleets interoperate in both directions (a v1 peer reads a v2 server's
// responses and vice versa), while the v2-only stats frame carries v2 and is
// only ever sent to a client that asked for it.
inline constexpr std::uint8_t kProtocolVersion = 2;
inline constexpr std::uint8_t kMinProtocolVersion = 1;
// Upper bound a reader accepts for the length prefix; anything larger is a
// corrupt or hostile stream (our payloads are tens of bytes).
inline constexpr std::uint32_t kMaxFrameBytes = 4096;
// Stats frames carry the whole registry as JSON, so the client-side reader
// allows a much larger (but still bounded) frame.
inline constexpr std::uint32_t kMaxStatsFrameBytes = 1 << 20;

// Payload encoders (no length prefix).
std::vector<std::uint8_t> encode_request(const Request& request);
std::vector<std::uint8_t> encode_response(const Response& response);

// Payload decoders: nullopt on short buffers, bad magic, bad version, or
// out-of-range enum codes. Trailing bytes are tolerated (forward compat).
std::optional<Request> decode_request(const std::vector<std::uint8_t>& payload);
std::optional<Response> decode_response(const std::vector<std::uint8_t>& payload);

// Stats response (kStats, protocol v2): id echoes the request, json is the
// cgps-serve-stats-v1 snapshot document.
struct StatsResponse {
  std::uint64_t id = 0;
  std::string json;
};
std::vector<std::uint8_t> encode_stats_response(std::uint64_t id, std::string_view json);
std::optional<StatsResponse> decode_stats_response(const std::vector<std::uint8_t>& payload);

// Prepend the u32 length prefix.
std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& payload);

// Blocking frame I/O over a connected socket/pipe fd. read_frame returns
// false on EOF, error, or an oversized/undersized length prefix; write_frame
// returns false when the peer went away. Both retry on EINTR and partial
// transfers.
bool read_frame(int fd, std::vector<std::uint8_t>& payload);
bool write_frame(int fd, const std::vector<std::uint8_t>& payload);

// Non-blocking frame scan over an in-memory stream buffer: when `buffer`
// holds a complete frame starting at `pos`, copies its payload out, advances
// `pos` past it and returns kFrame. kNeedMore = the prefix or payload is
// still partial (read more bytes and retry); kCorrupt = the length prefix is
// 0 or exceeds `max_frame_bytes` (the stream can no longer be trusted). The
// pipelined server/client paths parse batches of frames from one big read()
// through this instead of paying two syscalls per frame. The server keeps
// the tight request-sized default; clients reading stats frames pass
// kMaxStatsFrameBytes.
enum class FrameScan { kFrame, kNeedMore, kCorrupt };
FrameScan scan_frame(const std::vector<std::uint8_t>& buffer, std::size_t& pos,
                     std::vector<std::uint8_t>& payload,
                     std::uint32_t max_frame_bytes = kMaxFrameBytes);

// Append the framed message to an in-memory write buffer (pair with one
// write_all-style flush for a whole batch of responses).
void append_frame(std::vector<std::uint8_t>& buffer,
                  const std::vector<std::uint8_t>& payload);

// write(2) the whole buffer (EINTR/partial-retry); false when the peer went
// away. Exposed for the buffered server/client write paths.
bool write_all_bytes(int fd, const std::uint8_t* data, std::size_t n);

}  // namespace cgps::serve
