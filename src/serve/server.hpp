// TCP front end of cgps_serve (DESIGN.md §11): a loopback listener accepting
// length-prefixed request frames (serve/protocol.hpp), one reader thread per
// connection, responses written back under a per-connection mutex from
// whichever thread finishes the request (admission for rejects, the batching
// thread for served work). Requests on one connection are pipelined — the
// client needn't wait for a response before sending the next frame; responses
// carry the request id, so ordering is the client's concern.
#pragma once

#include "serve/core.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cgps::serve {

class ServeServer {
 public:
  // Binds 127.0.0.1:`port`; port 0 asks the kernel for an ephemeral port
  // (tests / parallel CI), readable via port() after start().
  ServeServer(ServeCore& core, int port);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  // Bind + listen + spawn the accept thread. False on bind/listen failure
  // (port in use, no permission) — error already logged.
  bool start();

  // Stop accepting, shut every live connection, join all threads. The core
  // is NOT stopped — callers own its drain (tools/cgps_serve stops the
  // server first, then drains the core, so accepted work still completes).
  void stop();

  int port() const { return port_; }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> open{true};
    // Responses accumulate here (under write_mu) and go out in one write(2)
    // at each batch boundary (ServeCore cycle hook) — the syscall-per-
    // response cost is what would otherwise cap pipelined throughput.
    std::vector<std::uint8_t> out_buf;
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  static void flush_connection(Connection& conn);
  void flush_all();

  ServeCore& core_;
  int requested_port_;
  int port_ = 0;
  int listen_fd_ = -1;
  // Live connection count behind the serve.active_connections gauge:
  // incremented at accept, decremented when the reader thread exits (the
  // serve.connections counter stays lifetime-monotonic).
  std::atomic<int> active_conns_{0};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> readers_;
};

}  // namespace cgps::serve
