#include "serve/access_log.hpp"

#include "util/env.hpp"
#include "util/json_writer.hpp"
#include "util/logging.hpp"

#include <memory>
#include <mutex>
#include <string>

namespace cgps::serve {

namespace {

// Record sink guarded by one mutex, mirroring the trace sink: reopened
// whenever CIRCUITGPS_SERVE_ACCESS_LOG changes between calls (tests retarget
// it), dropped when it is unset. A path that fails to open is remembered so
// the warning fires once per path.
struct Sink {
  std::mutex mu;
  std::string path;  // path the current file (or failure) corresponds to
  std::unique_ptr<JsonlFile> file;
};

Sink& sink_state() {
  static Sink* s = new Sink();  // never destroyed (requests drain at exit)
  return *s;
}

JsonlFile* sink() {
  const std::string path = env_serve_access_log_path();
  Sink& s = sink_state();
  if (path.empty()) {
    s.file.reset();
    s.path.clear();
    return nullptr;
  }
  if (s.path != path) {
    s.path = path;
    s.file = std::make_unique<JsonlFile>(s.path, env_run_log_max_bytes());
    if (!s.file->ok()) {
      log_warn("CIRCUITGPS_SERVE_ACCESS_LOG: cannot open ", s.path,
               "; access logging disabled");
      s.file.reset();
    }
  }
  return s.file.get();
}

}  // namespace

bool access_log_enabled() { return !env_serve_access_log_path().empty(); }

void log_access(const AccessRecord& record) {
  const double slow_ms = env_serve_slow_ms();
  if (slow_ms > 0.0 && static_cast<double>(record.total_us) > slow_ms * 1000.0) {
    log_warn("slow request: trace_id=", record.trace_id, " task=",
             task_kind_name(record.task), " status=", status_name(record.status),
             " design=", record.design, " total_us=", record.total_us,
             " queue_us=", record.queue_us, " batch=", record.batch_id, "/",
             record.batch_size);
  }
  if (!access_log_enabled()) return;
  Sink& s = sink_state();
  const std::scoped_lock lock(s.mu);
  JsonlFile* file = sink();
  if (file == nullptr) return;
  JsonWriter w;
  w.begin_object();
  w.field("schema", "cgps-serve-access-v1");
  w.field("trace_id", record.trace_id);
  w.field("id", record.wire_id);
  w.field("status", status_name(record.status));
  w.field("task", task_kind_name(record.task));
  w.field("design", static_cast<std::int64_t>(record.design));
  w.field("queue_us", record.queue_us);
  w.field("extract_us", record.extract_us);
  w.field("forward_us", record.forward_us);
  w.field("total_us", record.total_us);
  w.field("batch", record.batch_id);
  w.field("batch_size", record.batch_size);
  w.end_object();
  file->write_line(w.str());
}

}  // namespace cgps::serve
