#include "serve/client.hpp"

#include "serve/protocol.hpp"
#include "util/logging.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace cgps::serve {

ServeClient::~ServeClient() { close(); }

bool ServeClient::connect(const std::string& host, int port) {
  close();
  // A server that dies mid-call must surface as a failed write, not SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    log_error("serve client: socket() failed: ", std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    log_error("serve client: bad address '", host, "'");
    close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    log_error("serve client: connect(", host, ":", port,
              ") failed: ", std::strerror(errno));
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void ServeClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  out_buf_.clear();
  in_buf_.clear();
  in_pos_ = 0;
}

bool ServeClient::send(const Request& request) {
  enqueue(request);
  return flush();
}

void ServeClient::enqueue(const Request& request) {
  append_frame(out_buf_, encode_request(request));
}

bool ServeClient::flush() {
  if (fd_ < 0) return false;
  if (out_buf_.empty()) return true;
  const bool ok = write_all_bytes(fd_, out_buf_.data(), out_buf_.size());
  out_buf_.clear();
  if (!ok) close();
  return ok;
}

std::optional<Response> ServeClient::recv() {
  if (fd_ < 0) return std::nullopt;
  std::vector<std::uint8_t> payload;
  for (;;) {
    // The client side is liberal about frame size (stats frames carry the
    // whole registry as JSON); the server keeps the tight request-sized cap.
    const FrameScan scan = scan_frame(in_buf_, in_pos_, payload, kMaxStatsFrameBytes);
    if (scan == FrameScan::kFrame) {
      // Compact lazily: only once the parsed prefix dominates the buffer.
      if (in_pos_ > 4096 && in_pos_ * 2 > in_buf_.size()) {
        in_buf_.erase(in_buf_.begin(), in_buf_.begin() + static_cast<std::ptrdiff_t>(in_pos_));
        in_pos_ = 0;
      }
      return decode_response(payload);
    }
    if (scan == FrameScan::kCorrupt) {
      close();
      return std::nullopt;
    }
    std::uint8_t chunk[64 * 1024];
    const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      close();
      return std::nullopt;
    }
    in_buf_.insert(in_buf_.end(), chunk, chunk + got);
  }
}

std::optional<Response> ServeClient::call(const Request& request) {
  if (!send(request)) return std::nullopt;
  return recv();
}

std::optional<std::string> ServeClient::fetch_stats() {
  Request probe;
  probe.task = TaskKind::kStats;
  if (!send(probe)) return std::nullopt;
  std::vector<std::uint8_t> payload;
  for (;;) {
    const FrameScan scan = scan_frame(in_buf_, in_pos_, payload, kMaxStatsFrameBytes);
    if (scan == FrameScan::kFrame) {
      const std::optional<StatsResponse> stats = decode_stats_response(payload);
      if (stats.has_value()) return stats->json;
      // A stray regular response (pipelining misuse) is skipped; anything
      // else is an untrustworthy stream.
      if (decode_response(payload).has_value()) continue;
      close();
      return std::nullopt;
    }
    if (scan == FrameScan::kCorrupt) {
      close();
      return std::nullopt;
    }
    std::uint8_t chunk[64 * 1024];
    const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      close();
      return std::nullopt;
    }
    in_buf_.insert(in_buf_.end(), chunk, chunk + got);
  }
}

}  // namespace cgps::serve
