// The batching heart of cgps_serve (DESIGN.md §11): a bounded admission
// queue drained by one batching thread that coalesces concurrent requests
// into cross-request batches — subgraph extraction + DSPD fan out on the
// shared work pool, then one fused forward per (design) group through the
// planned executor (eager fallback) — and replies per request.
//
// Contracts:
//   * Coalescing is invisible to results: a batch of k requests returns the
//     same bits as k solo requests on the scalar backend (eval-mode
//     BatchNorm uses running stats, attention/pooling are block-diagonal
//     per graph, and every kernel is row-independent — asserted by
//     tests/test_serve.cpp).
//   * Backpressure is immediate: a submit against a full queue is rejected
//     with kOverloaded from the calling thread; the queue never grows past
//     `queue_cap`.
//   * Deadlines shed at dequeue: a request whose budget expired while
//     queued is answered kTimeout without paying for extraction/forward.
//   * Shutdown drains: stop() refuses new work (kShutdown) but every
//     already-accepted request is answered before stop() returns.
#pragma once

#include "exec/runner.hpp"
#include "gps/batch.hpp"
#include "gps/model.hpp"
#include "graph/subgraph.hpp"
#include "serve/serve.hpp"
#include "util/metrics.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cgps::serve {

struct ServeOptions {
  int max_batch = 64;       // requests coalesced per forward
  int queue_cap = 1024;     // admission-queue bound (beyond: kOverloaded)
  std::int64_t default_deadline_us = 100000;  // 100 ms
  SubgraphOptions subgraph{};                 // extraction options
};

// What the daemon is serving, stamped into every stats snapshot so an
// operator polling a fleet can tell builds and checkpoints apart.
struct ServeIdentity {
  std::string checkpoint;  // checkpoint path, or "demo" for synthetic weights
  std::string build;       // git describe stamp of the serving binary
};

// Reply sink; invoked exactly once per submitted request, either inline from
// submit() (validation failures, backpressure, kInfo) or from the batching
// thread. Must not block for long and must not call back into ServeCore.
using ResponseCallback = std::function<void(const Response&)>;

class ServeCore {
 public:
  // `model` is borrowed and must outlive the core; it is switched to eval
  // mode. `normalizer` must be the training-time X_C normalizer (bundled
  // with the checkpoint by train/model_io) for predictions to be meaningful.
  ServeCore(CircuitGps& model, XcNormalizer normalizer,
            std::vector<ServedDesign> designs, ServeOptions options = {});
  ~ServeCore();

  ServeCore(const ServeCore&) = delete;
  ServeCore& operator=(const ServeCore&) = delete;

  // Launch the batching thread. Without start(), requests queue up until
  // run_cycle() is called (the deterministic test/bench entry point).
  void start();

  // Graceful shutdown: refuse new submissions, drain every queued request,
  // join the batching thread. Idempotent. Safe without start().
  void stop();

  // Thread-safe admission. The callback always fires exactly once. Returns
  // true when the request was queued (or, for kInfo/validation failures,
  // answered inline with its real status); false when it was rejected with
  // kOverloaded or kShutdown.
  bool submit(const Request& request, ResponseCallback done);

  // Blocking convenience wrapper around submit() (socket handlers and tests
  // that want call/response semantics). Requires start() or a concurrent
  // run_cycle() driver for queued kinds.
  Response predict(const Request& request);

  // Synchronously drain and serve up to max_batch queued requests on the
  // calling thread. Only meaningful when the batching thread is not running
  // (tests/benches pinning batch composition). Returns requests answered.
  int run_cycle();

  std::size_t num_designs() const { return designs_.size(); }
  const ServedDesign& design(std::size_t i) const { return designs_[i]; }
  const CircuitGps& model() const { return model_; }
  const XcNormalizer& normalizer() const { return normalizer_; }
  const ServeOptions& options() const { return options_; }
  // True when forwards go through the compiled-plan executor
  // (CIRCUITGPS_EXEC=planned and the model config is supported).
  bool planned() const { return planned_; }
  // True when the planned executor serves int8-quantized weights
  // (CIRCUITGPS_QUANT=int8 at construction).
  bool quantized() const { return planned_ && runner_ != nullptr && runner_->quantized(); }

  // Adopt the pre-quantized weights of a v3 model bundle so quantized serving
  // uses the exact codes the bundle was saved with instead of re-quantizing.
  // Call before start(); a no-op unless quantized().
  void set_prequantized(exec::QuantStore store);

  // Stamp the snapshot identity (checkpoint path, build tag). Call before
  // start(); the strings are read unguarded by stats_json().
  void set_identity(ServeIdentity identity) { identity_ = std::move(identity); }

  // One cgps-serve-stats-v1 JSON document: uptime + identity, per-design
  // resident info, last-10s/last-60s windows (QPS, shed/reject rates,
  // p50/p95/p99) and the full metrics registry with lifetime quantiles.
  // Read-only over atomics — safe from any thread, never perturbs serving.
  std::string stats_json() const;

  // Invoked once after every batching cycle, from the thread that served it,
  // after all of the cycle's response callbacks have fired. The TCP front
  // end registers its write-buffer flush here so one batch of responses
  // costs one write(2) per connection instead of one per request. Pass an
  // empty function to unregister.
  void set_cycle_hook(std::function<void()> hook);

 private:
  struct Pending {
    Request request;
    ResponseCallback done;
    std::int64_t arrival_us = 0;   // trace::now_us() at admission
    std::int64_t deadline_us = 0;  // absolute, trace::now_us() scale
    // Observability trail threaded through admission -> dequeue -> batch:
    // the access-log record is assembled from these in finish().
    std::uint64_t trace_id = 0;    // monotonic admission id
    std::int64_t queue_us = 0;     // admission -> dequeue
    std::int64_t extract_us = 0;   // its batch's extraction wall time
    std::int64_t forward_us = 0;   // its batch's fused-forward wall time
    std::int64_t batch_id = 0;     // 0 = answered inline
    int batch_size = 0;
  };

  void loop();
  int serve_some(std::vector<Pending>& taken);
  void process_group(std::vector<Pending*>& group);
  void reply(Pending& p, Status status, float value, double cap_farads);
  void finish(Pending& p, const Response& r);

  CircuitGps& model_;
  XcNormalizer normalizer_;
  std::vector<ServedDesign> designs_;
  ServeOptions options_;
  BatchOptions batch_options_;
  bool planned_ = false;                        // compiled-plan forward path
  std::unique_ptr<exec::PlanRunner> runner_;    // batching-thread only

  mutable std::mutex hook_mu_;
  std::function<void()> cycle_hook_;

  ServeIdentity identity_;
  std::int64_t start_us_ = 0;  // trace::now_us() at construction (uptime)
  std::atomic<std::uint64_t> next_trace_id_{1};
  std::atomic<std::int64_t> next_batch_id_{1};
  // One-second epoch rings behind the stats snapshot's last-10s/last-60s
  // windows (lifetime instruments live in the global registry).
  RollingCounter window_done_;      // responses of any status
  RollingCounter window_ok_;
  RollingCounter window_shed_;      // kTimeout (deadline shed at dequeue)
  RollingCounter window_rejected_;  // kOverloaded (admission backpressure)
  RollingHistogram window_latency_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Pending> queue_;  // FIFO; drained from the front
  bool stopping_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace cgps::serve
