#include "util/serialize.hpp"

namespace cgps {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) throw std::runtime_error("BinaryWriter: cannot open " + path);
}

void BinaryWriter::write_raw(const void* data, std::size_t n) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out_) throw std::runtime_error("BinaryWriter: write failed");
}

void BinaryWriter::write_u32(std::uint32_t v) { write_raw(&v, sizeof(v)); }
void BinaryWriter::write_u64(std::uint64_t v) { write_raw(&v, sizeof(v)); }
void BinaryWriter::write_f32(float v) { write_raw(&v, sizeof(v)); }
void BinaryWriter::write_f64(double v) { write_raw(&v, sizeof(v)); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  write_raw(s.data(), s.size());
}

void BinaryWriter::write_f32_vector(const std::vector<float>& v) {
  write_u64(v.size());
  if (!v.empty()) write_raw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::write_i64_vector(const std::vector<std::int64_t>& v) {
  write_u64(v.size());
  if (!v.empty()) write_raw(v.data(), v.size() * sizeof(std::int64_t));
}

void BinaryWriter::write_i8_vector(const std::vector<std::int8_t>& v) {
  write_u64(v.size());
  if (!v.empty()) write_raw(v.data(), v.size());
}

BinaryReader::BinaryReader(const std::string& path) : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("BinaryReader: cannot open " + path);
}

void BinaryReader::read_raw(void* data, std::size_t n) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (!in_) throw std::runtime_error("BinaryReader: truncated read");
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v = 0;
  read_raw(&v, sizeof(v));
  return v;
}
std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v = 0;
  read_raw(&v, sizeof(v));
  return v;
}
float BinaryReader::read_f32() {
  float v = 0;
  read_raw(&v, sizeof(v));
  return v;
}
double BinaryReader::read_f64() {
  double v = 0;
  read_raw(&v, sizeof(v));
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  std::string s(n, '\0');
  if (n > 0) read_raw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::read_f32_vector() {
  const std::uint64_t n = read_u64();
  std::vector<float> v(n);
  if (n > 0) read_raw(v.data(), n * sizeof(float));
  return v;
}

std::vector<std::int64_t> BinaryReader::read_i64_vector() {
  const std::uint64_t n = read_u64();
  std::vector<std::int64_t> v(n);
  if (n > 0) read_raw(v.data(), n * sizeof(std::int64_t));
  return v;
}

std::vector<std::int8_t> BinaryReader::read_i8_vector() {
  const std::uint64_t n = read_u64();
  std::vector<std::int8_t> v(n);
  if (n > 0) read_raw(v.data(), n);
  return v;
}

}  // namespace cgps
