#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cgps {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_int: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_int(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace cgps
