// Tiny leveled logger. Bench/binary output goes through plain stdout; this
// logger is for diagnostics and is filtered by CGPS_LOG_LEVEL (env) or
// set_log_level().
#pragma once

#include <sstream>
#include <string>

namespace cgps {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace cgps
