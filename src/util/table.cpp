#include "util/table.hpp"

#include <algorithm>
#include <sstream>

namespace cgps {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(width[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace cgps
