// ASCII table printer used by the bench binaries to render paper-style
// tables (Table II..VIII) with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace cgps {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Render with column alignment and a header separator.
  std::string to_string() const;

  // Render as comma-separated values (for machine-readable dumps).
  std::string to_csv() const;

  // Raw cells, for structured export (bench BenchReport JSON).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cgps
