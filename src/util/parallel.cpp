#include "util/parallel.hpp"

#include "util/env.hpp"
#include "util/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cgps::par {

namespace {

thread_local bool g_on_worker = false;

// Cumulative activity counters (see PoolStats). Kept at namespace scope so
// they survive Pool destruction when set_threads() resizes the pool.
std::atomic<std::int64_t> g_pooled_jobs{0};
std::atomic<std::int64_t> g_serial_jobs{0};
std::atomic<std::int64_t> g_chunks{0};
std::atomic<std::int64_t> g_busy_ns{0};
std::atomic<std::int64_t> g_job_wall_ns{0};

std::int64_t ns_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Marks the calling thread as "inside a parallel region" while it helps
// drain its own job, so a nested parallel_for from one of its chunks runs
// inline instead of re-entering Pool::run() (which would self-deadlock on
// job_mu_). Workers get the same flag permanently in worker_loop().
class InParallelRegion {
 public:
  InParallelRegion() : prev_(g_on_worker) { g_on_worker = true; }
  ~InParallelRegion() { g_on_worker = prev_; }

 private:
  bool prev_;
};

// A persistent pool executing one chunked job at a time. Workers park on a
// condition variable between jobs; chunks are claimed with an atomic
// counter, so assignment of chunks to threads is dynamic (load-balanced)
// while chunk *boundaries* stay fixed (see parallel.hpp contract).
class Pool {
 public:
  explicit Pool(int workers) {
    active_ = workers;  // each worker decrements when it first parks
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  int width() const { return static_cast<int>(workers_.size()) + 1; }

  void run(std::int64_t begin, std::int64_t end, std::int64_t grain,
           const std::function<void(std::int64_t, std::int64_t)>& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    g_pooled_jobs.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> job_lock(job_mu_);  // one job at a time
    std::unique_lock<std::mutex> lk(mu_);
    // Job state may only be rewritten once every straggler from the previous
    // job has left drain(); otherwise a worker that already claimed an
    // out-of-range chunk index could race the reset of next_/n_chunks_.
    idle_cv_.wait(lk, [this] { return active_ == 0; });
    fn_ = &fn;
    begin_ = begin;
    end_ = end;
    grain_ = grain;
    n_chunks_ = (end - begin + grain - 1) / grain;
    finished_ = 0;
    error_ = nullptr;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
    lk.unlock();
    cv_.notify_all();
    {
      const InParallelRegion region;  // nested parallel_for must run inline
      drain();                        // the caller participates as a worker
    }
    lk.lock();
    done_cv_.wait(lk, [this] { return finished_ == n_chunks_; });
    g_job_wall_ns.fetch_add(ns_since(t0), std::memory_order_relaxed);
    if (error_) {
      std::exception_ptr err = error_;
      error_ = nullptr;
      lk.unlock();
      std::rethrow_exception(err);
    }
  }

 private:
  void drain() {
    for (;;) {
      const std::int64_t chunk = next_.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= n_chunks_) return;
      const std::int64_t b = begin_ + chunk * grain_;
      const std::int64_t e = std::min(end_, b + grain_);
      const auto t0 = std::chrono::steady_clock::now();
      std::exception_ptr err;
      try {
        (*fn_)(b, e);
      } catch (...) {
        err = std::current_exception();
      }
      g_busy_ns.fetch_add(ns_since(t0), std::memory_order_relaxed);
      g_chunks.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lk(mu_);
      if (err && !error_) error_ = err;
      if (++finished_ == n_chunks_) done_cv_.notify_all();
    }
  }

  void worker_loop() {
    g_on_worker = true;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      --active_;  // parking
      if (active_ == 0) idle_cv_.notify_all();
      cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      ++active_;
      lk.unlock();
      drain();
      lk.lock();
    }
  }

  std::mutex job_mu_;  // serializes concurrent run() callers

  std::mutex mu_;
  std::condition_variable cv_;       // workers: new job or stop
  std::condition_variable done_cv_;  // caller: all chunks finished
  std::condition_variable idle_cv_;  // caller: all workers parked
  std::vector<std::thread> workers_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  // Workers not parked on cv_. Initialized to the worker count so run()
  // cannot touch job state before every spawned thread first parks.
  int active_ = 0;

  const std::function<void(std::int64_t, std::int64_t)>* fn_ = nullptr;
  std::int64_t begin_ = 0;
  std::int64_t end_ = 0;
  std::int64_t grain_ = 1;
  std::int64_t n_chunks_ = 0;
  std::int64_t finished_ = 0;
  std::atomic<std::int64_t> next_{0};
  std::exception_ptr error_;
};

struct State {
  std::mutex mu;
  int threads = 0;  // 0 = take the environment default on first use
  std::unique_ptr<Pool> pool;
};

State& state() {
  static State s;
  return s;
}

void run_serial(std::int64_t begin, std::int64_t end, std::int64_t grain,
                const std::function<void(std::int64_t, std::int64_t)>& fn) {
  g_serial_jobs.fetch_add(1, std::memory_order_relaxed);
  // Same chunk boundaries as the pooled path, in ascending order.
  for (std::int64_t b = begin; b < end; b += grain) {
    fn(b, std::min(end, b + grain));
  }
}

}  // namespace

int max_threads() {
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.threads == 0) s.threads = env_thread_count();
  return s.threads;
}

void set_threads(int n) {
  State& s = state();
  std::unique_ptr<Pool> old;  // joined outside the lock
  std::lock_guard<std::mutex> lk(s.mu);
  s.threads = n > 0 ? n : env_thread_count();
  if (s.pool && s.pool->width() != s.threads) old = std::move(s.pool);
}

bool on_worker_thread() { return g_on_worker; }

PoolStats pool_stats() {
  PoolStats s;
  s.width = max_threads();
  s.pooled_jobs = g_pooled_jobs.load(std::memory_order_relaxed);
  s.serial_jobs = g_serial_jobs.load(std::memory_order_relaxed);
  s.chunks = g_chunks.load(std::memory_order_relaxed);
  s.busy_ns = g_busy_ns.load(std::memory_order_relaxed);
  s.job_wall_ns = g_job_wall_ns.load(std::memory_order_relaxed);
  return s;
}

void sample_pool_gauges() {
  static std::mutex sample_mu;
  static PoolStats prev;
  const std::lock_guard<std::mutex> lk(sample_mu);
  const PoolStats now = pool_stats();
  const std::int64_t jobs = now.pooled_jobs - prev.pooled_jobs;
  const std::int64_t chunks = now.chunks - prev.chunks;
  const std::int64_t busy_ns = now.busy_ns - prev.busy_ns;
  const std::int64_t wall_ns = now.job_wall_ns - prev.job_wall_ns;
  prev = now;

  metric_gauge("pool.width").set(static_cast<double>(now.width));
  const double depth =
      jobs > 0 ? static_cast<double>(chunks) / static_cast<double>(jobs) : 0.0;
  metric_gauge("pool.queue_depth").set(depth);
  // Busy time summed over threads / (job wall time x width). Can exceed 1
  // slightly when chunks outlive run()'s wall clock by scheduling noise.
  const double util =
      wall_ns > 0 ? static_cast<double>(busy_ns) /
                        (static_cast<double>(wall_ns) * static_cast<double>(now.width))
                  : 0.0;
  metric_gauge("pool.utilization").set(std::clamp(util, 0.0, 1.0));
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const std::int64_t n_chunks = (end - begin + grain - 1) / grain;
  if (g_on_worker || n_chunks == 1 || max_threads() == 1) {
    run_serial(begin, end, grain, fn);
    return;
  }
  Pool* pool;
  {
    State& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    if (!s.pool) s.pool = std::make_unique<Pool>(s.threads - 1);
    pool = s.pool.get();
  }
  pool->run(begin, end, grain, fn);
}

}  // namespace cgps::par
