// Wall-clock stopwatch used to report per-experiment times (paper Tables
// II/III/VII report seconds).
#pragma once

#include <chrono>

namespace cgps {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  // Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// RAII section tracker: adds the scope's wall-clock seconds to an
// accumulator on destruction, so per-phase costs (sample / batch / fwd /
// bwd / opt, ...) can be summed across loop iterations and reported per
// epoch.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& accumulator) : acc_(&accumulator) {}
  ~ScopedTimer() { *acc_ += watch_.seconds(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Stopwatch watch_;
  double* acc_;
};

}  // namespace cgps
