#include "util/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace cgps {

double bench_scale() {
  static const double scale = [] {
    if (const char* env = std::getenv("CIRCUITGPS_SCALE")) {
      try {
        const double v = std::stod(env);
        if (v > 0) return v;
      } catch (...) {
      }
    }
    return 1.0;
  }();
  return scale;
}

int scaled(int base, int min_value) {
  return std::max(min_value, static_cast<int>(base * bench_scale()));
}

}  // namespace cgps
