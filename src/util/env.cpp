#include "util/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>

namespace cgps {

double bench_scale() {
  static const double scale = [] {
    if (const char* env = std::getenv("CIRCUITGPS_SCALE")) {
      try {
        const double v = std::stod(env);
        if (v > 0) return v;
      } catch (...) {
      }
    }
    return 1.0;
  }();
  return scale;
}

int scaled(int base, int min_value) {
  return std::max(min_value, static_cast<int>(base * bench_scale()));
}

int env_thread_count() {
  if (const char* env = std::getenv("CIRCUITGPS_THREADS")) {
    try {
      const int v = std::stoi(env);
      if (v >= 1) return v;
    } catch (...) {
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::string env_run_log_path() {
  const char* env = std::getenv("CIRCUITGPS_RUN_LOG");
  return env != nullptr ? std::string(env) : std::string();
}

std::int64_t env_run_log_max_bytes() {
  if (const char* env = std::getenv("CIRCUITGPS_RUN_LOG_MAX_MB")) {
    try {
      const double mb = std::stod(env);
      if (mb > 0) return static_cast<std::int64_t>(mb * 1024.0 * 1024.0);
    } catch (...) {
    }
  }
  return 0;
}

std::string env_bench_dir() {
  const char* env = std::getenv("CIRCUITGPS_BENCH_DIR");
  return env != nullptr && *env != '\0' ? std::string(env) : std::string(".");
}

}  // namespace cgps
