#include "util/env.hpp"

#include "util/logging.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <thread>

// NOLINTBEGIN(concurrency-mt-unsafe): this file is the one sanctioned
// std::getenv site (cgps_lint rule getenv-outside-env). Nothing here calls
// setenv/putenv, so the getenv data race clang-tidy guards against cannot
// occur; values are parsed through warn-once helpers and mostly cached in
// function-local statics.

namespace cgps {

namespace {

// One warning per (variable, value) so a long-lived process that re-reads an
// env var every call (env_thread_count, env_run_log_max_bytes) does not spam
// the log, but a *changed* bad value still gets reported.
void warn_once(const char* name, const char* text, const char* why) {
  static std::mutex mu;
  static std::set<std::string> warned;
  const std::string key = std::string(name) + "=" + text;
  {
    const std::scoped_lock lock(mu);
    if (!warned.insert(key).second) return;
  }
  log_warn("ignoring ", name, "=\"", text, "\": ", why);
}

}  // namespace

std::optional<double> parse_env_double(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) return std::nullopt;
  return v;
}

std::optional<long long> parse_env_int(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return std::nullopt;
  return v;
}

double bench_scale() {
  static const double scale = [] {
    if (const char* env = std::getenv("CIRCUITGPS_SCALE")) {
      const std::optional<double> v = parse_env_double(env);
      if (v.has_value() && *v > 0) return *v;
      warn_once("CIRCUITGPS_SCALE", env, "want a positive number; using 1");
    }
    return 1.0;
  }();
  return scale;
}

int scaled(int base, int min_value) {
  return std::max(min_value, static_cast<int>(base * bench_scale()));
}

int env_thread_count() {
  if (const char* env = std::getenv("CIRCUITGPS_THREADS")) {
    const std::optional<long long> v = parse_env_int(env);
    if (v.has_value() && *v >= 1) return static_cast<int>(std::min<long long>(*v, 1 << 20));
    warn_once("CIRCUITGPS_THREADS", env,
              "want a positive integer; using the hardware default");
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::string env_run_log_path() {
  const char* env = std::getenv("CIRCUITGPS_RUN_LOG");
  return env != nullptr ? std::string(env) : std::string();
}

std::int64_t env_run_log_max_bytes() {
  if (const char* env = std::getenv("CIRCUITGPS_RUN_LOG_MAX_MB")) {
    const std::optional<double> mb = parse_env_double(env);
    if (mb.has_value() && *mb > 0)
      return static_cast<std::int64_t>(*mb * 1024.0 * 1024.0);
    warn_once("CIRCUITGPS_RUN_LOG_MAX_MB", env,
              "want a positive number of MiB; leaving the log unbounded");
  }
  return 0;
}

std::string env_bench_dir() {
  const char* env = std::getenv("CIRCUITGPS_BENCH_DIR");
  return env != nullptr && *env != '\0' ? std::string(env) : std::string(".");
}

std::string env_trace_path() {
  const char* env = std::getenv("CIRCUITGPS_TRACE");
  return env != nullptr ? std::string(env) : std::string();
}

bool env_trace_enabled() {
  const char* env = std::getenv("CIRCUITGPS_TRACE");
  return env != nullptr && *env != '\0';
}

ExecMode env_exec_mode() {
  if (const char* env = std::getenv("CIRCUITGPS_EXEC")) {
    const std::string v(env);
    if (v == "planned") return ExecMode::kPlanned;
    if (v == "eager" || v.empty()) return ExecMode::kEager;
    warn_once("CIRCUITGPS_EXEC", env, "want eager|planned; using eager");
  }
  return ExecMode::kEager;
}

BackendKind env_backend() {
  if (const char* env = std::getenv("CIRCUITGPS_BACKEND")) {
    const std::string v(env);
    if (v == "scalar") return BackendKind::kScalar;
    if (v == "avx2") return BackendKind::kAvx2;
    if (v == "auto" || v.empty()) return BackendKind::kAuto;
    warn_once("CIRCUITGPS_BACKEND", env, "want scalar|avx2|auto; using auto");
  }
  return BackendKind::kAuto;
}

QuantMode env_quant_mode() {
  if (const char* env = std::getenv("CIRCUITGPS_QUANT")) {
    const std::string v(env);
    if (v == "int8") return QuantMode::kInt8;
    if (v == "off" || v.empty()) return QuantMode::kOff;
    warn_once("CIRCUITGPS_QUANT", env, "want off|int8; using off");
  }
  return QuantMode::kOff;
}

namespace {

// Shared reader for the CIRCUITGPS_SERVE_* integer knobs: value must be an
// integer in [min, max], else warn once and use the default.
int serve_int_env(const char* name, int fallback, int min, int max) {
  if (const char* env = std::getenv(name)) {
    const std::optional<long long> v = parse_env_int(env);
    if (v.has_value() && *v >= min && *v <= max) return static_cast<int>(*v);
    warn_once(name, env, "out of range or not an integer; using the default");
  }
  return fallback;
}

}  // namespace

int env_serve_port() { return serve_int_env("CIRCUITGPS_SERVE_PORT", 9207, 0, 65535); }

int env_serve_max_batch() {
  return serve_int_env("CIRCUITGPS_SERVE_MAX_BATCH", 64, 1, 4096);
}

int env_serve_queue_cap() {
  return serve_int_env("CIRCUITGPS_SERVE_QUEUE_CAP", 1024, 1, 1 << 20);
}

int env_serve_deadline_ms() {
  return serve_int_env("CIRCUITGPS_SERVE_DEADLINE_MS", 100, 1, 3600000);
}

std::string env_serve_access_log_path() {
  const char* env = std::getenv("CIRCUITGPS_SERVE_ACCESS_LOG");
  return env != nullptr ? std::string(env) : std::string();
}

double env_serve_slow_ms() {
  if (const char* env = std::getenv("CIRCUITGPS_SERVE_SLOW_MS")) {
    const std::optional<double> ms = parse_env_double(env);
    if (ms.has_value() && *ms > 0) return *ms;
    warn_once("CIRCUITGPS_SERVE_SLOW_MS", env,
              "want a positive number of milliseconds; slow-request warnings off");
  }
  return 0.0;
}

std::string env_log_level_name() {
  const char* env = std::getenv("CGPS_LOG_LEVEL");
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace cgps

// NOLINTEND(concurrency-mt-unsafe)
