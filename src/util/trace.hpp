// Hierarchical hot-path latency tracing (DESIGN.md §8).
//
// A TraceSpan is an RAII section marker: construction pushes the span onto a
// thread-local stack (spans nest), destruction pops it and feeds the span's
// wall-clock seconds into a per-span-name latency histogram
// ("trace.<name>") in the process-wide MetricsRegistry. When
// CIRCUITGPS_TRACE names a writable file, every span additionally streams a
// begin/end event pair ("cgps-trace-v1" JSONL, Chrome about:tracing event
// shape) so a run can be inspected phase by phase. Same contract as
// CIRCUITGPS_RUN_LOG: telemetry is write-only and the variable unset means
// zero behaviour change — training stays bit-identical
// (tests/test_trace.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cgps {

class Histogram;

namespace trace {

// True when CIRCUITGPS_TRACE names an event-log path that could be opened.
// Read fresh on every call, like env_run_log_path().
bool stream_enabled();

// Monotonic microseconds since process start (trace event timestamps).
std::int64_t now_us();

// Nesting depth of live TraceSpans on the calling thread.
int depth();

// Name of the innermost live span on the calling thread ("" when none).
std::string_view current_span();

// Stable small integer id for the calling thread (trace event "tid").
int thread_id();

// The latency histogram "trace.<name>" (1-2-5 log ladder, 1 µs .. 100 s,
// in seconds) backing a span name, registered on first use.
Histogram& latency_histogram(std::string_view name);

// Record a completed section that could not be expressed as an RAII scope
// (the autograd backward marks): observes `dur_s` into the span's latency
// histogram and, when streaming, emits one Chrome "X" (complete) event with
// the given start timestamp.
void record_complete(std::string_view name, std::int64_t start_us, double dur_s);

// "timestamp-pid" hex tag identifying one run/process, so records from
// concurrent trainers appending to a shared JSONL file stay
// distinguishable (cgps-train-v1 "run_id").
std::string make_run_id();

}  // namespace trace

class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  std::int64_t start_us_ = 0;
  Histogram* hist_ = nullptr;  // cached at construction
};

}  // namespace cgps
