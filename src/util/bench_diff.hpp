// Comparison of two cgps-bench-v1 reports (bench/common.hpp BenchReport):
// row-wise metric diff with a percentage tolerance, rendered as a util/table
// TextTable. Backs the tools/cgps_bench_diff CLI and its tests; kept in
// cgps_util so the diff logic is unit-testable without spawning the binary.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cgps {

// The subset of a cgps-bench-v1 report the differ consumes. `metrics`
// preserves the report's member order so diff tables read like the report.
struct BenchReportView {
  std::string bench;  // report/bench name
  std::string git;    // producing commit ("unknown" outside a checkout)
  std::vector<std::pair<std::string, double>> metrics;
  double wall_seconds = 0.0;
};

// Parse + validate a cgps-bench-v1 document. Requires schema ==
// "cgps-bench-v1", a string "bench", and an all-numeric "metrics" object.
// Returns nullopt and fills `error` (if given) on malformed input.
std::optional<BenchReportView> parse_bench_report(std::string_view text,
                                                  std::string* error = nullptr);

// parse_bench_report over a file's contents; also fails on unreadable paths.
std::optional<BenchReportView> load_bench_report(const std::string& path,
                                                 std::string* error = nullptr);

// Direction heuristic: quality scores (auc / acc / f1 / r2 / precision /
// recall / score / hit / throughput) regress when they *drop*; everything
// else (losses, errors, latencies, counts) regresses when it *rises*.
bool metric_higher_is_better(std::string_view name);

struct BenchDiffOptions {
  // A candidate metric may move this many percent in the bad direction
  // (relative to the baseline value) before it counts as a regression.
  double tolerance_pct = 5.0;
  // wall_seconds is machine noise across hosts; only diff it on request.
  bool include_wall = false;
};

struct BenchDiffRow {
  std::string metric;
  bool in_baseline = false;
  bool in_candidate = false;
  double baseline = 0.0;
  double candidate = 0.0;
  double delta_pct = 0.0;  // signed, relative to the baseline value
  bool higher_is_better = false;
  // "ok" | "improved" | "REGRESSED" | "new" | "MISSING"
  std::string status;
};

struct BenchDiffResult {
  std::vector<BenchDiffRow> rows;
  int regressions = 0;  // REGRESSED rows + MISSING rows
};

// Diff candidate against baseline. Rows follow the baseline's metric order,
// then candidate-only metrics. A metric present in the baseline but absent
// from the candidate is a regression (MISSING); a candidate-only metric is
// informational (new).
BenchDiffResult diff_bench_reports(const BenchReportView& baseline,
                                   const BenchReportView& candidate,
                                   const BenchDiffOptions& options = {});

// Human-readable diff: header lines naming both reports, the row table, and
// a one-line verdict.
std::string render_bench_diff(const BenchReportView& baseline,
                              const BenchReportView& candidate,
                              const BenchDiffResult& result,
                              const BenchDiffOptions& options);

// CLI driver for tools/cgps_bench_diff:
//   cgps_bench_diff <baseline.json> <candidate.json>
//                   [--tolerance-pct N] [--include-wall]
// Appends all output (table or error text) to *out. Returns 0 when no metric
// regressed, 1 on regression, 2 on bad usage or malformed input.
int bench_diff_main(int argc, const char* const* argv, std::string& out);

}  // namespace cgps
