// Comparison of cgps-bench-v1 reports (bench/common.hpp BenchReport):
// pairwise metric diffs with a percentage tolerance, and a multi-report
// trend mode over a chronological series of git-describe-stamped reports.
// Backs the tools/cgps_bench_diff and tools/cgps_bench_trend CLIs and their
// tests; kept in cgps_util so the logic is unit-testable without spawning
// the binaries.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cgps {

// Per-metric regression direction. Reports written since the "directions"
// payload exists carry one explicitly per metric; for older reports a name
// heuristic (metric_higher_is_better) fills the gap.
enum class MetricDirection {
  kLowerIsBetter,   // losses, errors, latencies — regress when they rise
  kHigherIsBetter,  // quality scores — regress when they drop
  kTwoSided,        // deterministic counts — any move is a regression
};

// "down" / "up" / "both" — the tokens used in the report's "directions"
// object and in rendered tables.
std::string_view metric_direction_token(MetricDirection direction);

// The subset of a cgps-bench-v1 report the differ consumes. `metrics`
// preserves the report's member order so diff tables read like the report.
struct BenchReportView {
  std::string bench;   // report/bench name
  std::string git;     // producing commit ("unknown" outside a checkout)
  std::string source;  // file path or label; trend tables cite it
  std::vector<std::pair<std::string, double>> metrics;
  // Explicit per-metric directions from the optional "directions" object.
  std::vector<std::pair<std::string, MetricDirection>> directions;
  double wall_seconds = 0.0;
};

// Parse + validate a cgps-bench-v1 document. Requires schema ==
// "cgps-bench-v1", a string "bench", and an all-numeric "metrics" object.
// An optional "directions" object maps metric names to "down"/"up"/"both".
// Returns nullopt and fills `error` (if given) on malformed input.
std::optional<BenchReportView> parse_bench_report(std::string_view text,
                                                  std::string* error = nullptr);

// parse_bench_report over a file's contents; also fails on unreadable paths.
// Fills `source` with the path.
std::optional<BenchReportView> load_bench_report(const std::string& path,
                                                 std::string* error = nullptr);

// Direction heuristic for reports without explicit metadata: quality scores
// (auc / acc / f1 / r2 / precision / recall / score / hit / throughput)
// regress when they *drop*; everything else (losses, errors, latencies,
// counts) regresses when it *rises*.
bool metric_higher_is_better(std::string_view name);

// The direction for `name`: the report's explicit entry when present, the
// name heuristic otherwise.
MetricDirection metric_direction(const BenchReportView& report, std::string_view name);

struct BenchDiffOptions {
  // A candidate metric may move this many percent in the bad direction
  // (relative to the baseline value) before it counts as a regression.
  double tolerance_pct = 5.0;
  // wall_seconds is machine noise across hosts; only diff it on request.
  bool include_wall = false;
  // Metrics whose name contains any of these substrings are reported but
  // never gate (status "skipped") — e.g. "--skip seconds" on a shared CI
  // host where timings are noise but quality metrics must hold.
  std::vector<std::string> skip;
};

struct BenchDiffRow {
  std::string metric;
  bool in_baseline = false;
  bool in_candidate = false;
  double baseline = 0.0;
  double candidate = 0.0;
  double delta_pct = 0.0;  // signed, relative to the baseline value
  MetricDirection direction = MetricDirection::kLowerIsBetter;
  // "ok" | "improved" | "REGRESSED" | "new" | "MISSING" | "skipped"
  std::string status;
};

struct BenchDiffResult {
  std::vector<BenchDiffRow> rows;
  int regressions = 0;  // REGRESSED rows + MISSING rows
};

// Diff candidate against baseline. Rows follow the baseline's metric order,
// then candidate-only metrics. A metric present in the baseline but absent
// from the candidate is a regression (MISSING); a candidate-only metric is
// informational (new). Directions resolve from the baseline's metadata
// first, then the candidate's, then the name heuristic.
BenchDiffResult diff_bench_reports(const BenchReportView& baseline,
                                   const BenchReportView& candidate,
                                   const BenchDiffOptions& options = {});

// Human-readable diff: header lines naming both reports, the row table, and
// a one-line verdict.
std::string render_bench_diff(const BenchReportView& baseline,
                              const BenchReportView& candidate,
                              const BenchDiffResult& result,
                              const BenchDiffOptions& options);

// CLI driver for tools/cgps_bench_diff:
//   cgps_bench_diff <baseline.json> <candidate.json>
//                   [--tolerance-pct N] [--include-wall] [--skip SUBSTR]...
// Appends all output (table or error text) to *out. Returns 0 when no metric
// regressed, 1 on regression, 2 on bad usage or malformed input.
int bench_diff_main(int argc, const char* const* argv, std::string& out);

// ---------------------------------------------------------------- trend --

struct BenchTrendOptions {
  // Drift tolerance for newest-vs-oldest, like BenchDiffOptions.
  double tolerance_pct = 5.0;
  // Keep only the newest N reports of the series (0 = all).
  std::size_t last_n = 0;
  bool include_wall = false;
  std::vector<std::string> skip;
};

struct BenchTrendRow {
  std::string metric;
  MetricDirection direction = MetricDirection::kLowerIsBetter;
  int present = 0;         // reports of the series carrying this metric
  double first = 0.0;      // oldest value present
  double last = 0.0;       // value in the newest report carrying it
  double min = 0.0;
  double max = 0.0;
  double delta_pct = 0.0;  // first -> last, relative to first
  std::string spark;       // ASCII min..max ramp over the series
  // "ok" | "improved" | "DRIFTED" | "MISSING" | "new" | "skipped"
  std::string status;
};

struct BenchTrendResult {
  std::vector<BenchTrendRow> rows;
  int drifts = 0;           // DRIFTED rows + MISSING rows
  std::size_t reports = 0;  // series length after --last trimming
  std::string bench;
  std::string first_git;
  std::string last_git;
};

// Per-metric drift over a chronological series (oldest first — callers sort
// file paths lexicographically, which the bench/history/ naming convention
// (<seq>-<git>.json) makes chronological). A metric is DRIFTED when newest
// vs oldest moves past the tolerance in its bad direction, MISSING when it
// appeared earlier but is absent from the newest report, and "new" when only
// the newest report carries it.
BenchTrendResult trend_bench_reports(const std::vector<BenchReportView>& series,
                                     const BenchTrendOptions& options = {});

std::string render_bench_trend(const BenchTrendResult& result,
                               const BenchTrendOptions& options);

// CLI driver for tools/cgps_bench_trend:
//   cgps_bench_trend <history-dir | report.json report.json ...>
//                    [--bench NAME] [--last N] [--tolerance-pct N]
//                    [--skip SUBSTR]... [--include-wall]
// A directory argument expands to its *.json entries, sorted by name. All
// reports must agree on the bench name (--bench filters a mixed directory).
// Returns 0 when nothing drifted, 1 on drift, 2 on bad usage, malformed
// input, or fewer than two usable reports.
int bench_trend_main(int argc, const char* const* argv, std::string& out);

}  // namespace cgps
