// Shared work-pool layer: deterministic data parallelism for the tensor
// kernels and the sampling pipeline.
//
// Determinism contract: `parallel_for` covers the half-open range
// [begin, end) with disjoint chunks whose boundaries are a pure function of
// (begin, end, grain) — never of the thread count or of scheduling. Callers
// partition work so every output element is produced by exactly one chunk
// with a fixed accumulation order; any per-chunk partials a caller keeps are
// therefore bit-identical at every CIRCUITGPS_THREADS setting, and
// CIRCUITGPS_THREADS=1 reproduces serial results exactly.
#pragma once

#include <cstdint>
#include <functional>

namespace cgps::par {

// Configured pool width: CIRCUITGPS_THREADS if set (clamped to >= 1), else
// std::thread::hardware_concurrency(). 1 means "never touch the pool".
int max_threads();

// Runtime override of the pool width (benches / determinism tests).
// n <= 0 resets to the environment default. Safe to call between jobs; the
// persistent pool is resized lazily on the next parallel_for.
void set_threads(int n);

// True on a pool worker thread. Nested parallel_for calls detect this and
// run inline (serially) to avoid deadlocking the single shared pool.
bool on_worker_thread();

// Invoke fn(b, e) over consecutive chunks covering [begin, end), each at
// most `grain` elements long (grain < 1 is treated as 1). With one thread,
// one chunk, or when already on a worker thread, runs serially on the
// calling thread in ascending chunk order. The first exception thrown by fn
// is rethrown on the calling thread after the range is drained.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

// Convenience: grain that yields roughly `target_work` scalar operations per
// chunk for a loop whose per-index cost is `work_per_index`.
inline std::int64_t grain_for(std::int64_t work_per_index,
                              std::int64_t target_work = 1 << 14) {
  if (work_per_index < 1) work_per_index = 1;
  const std::int64_t g = target_work / work_per_index;
  return g < 1 ? 1 : g;
}

// Cumulative work-pool activity since process start. Counters survive pool
// resizes (set_threads) — they live beside, not inside, the Pool object.
// Serial jobs (width 1, single chunk, or nested-on-worker) are counted but
// not timed: the serial path is the hot path for small kernels and must not
// pay two clock reads per chunk.
struct PoolStats {
  int width = 1;                  // current configured width (max_threads)
  std::int64_t pooled_jobs = 0;   // parallel_for calls that used the pool
  std::int64_t serial_jobs = 0;   // parallel_for calls that ran inline
  std::int64_t chunks = 0;        // chunks executed by pooled jobs
  std::int64_t busy_ns = 0;       // summed per-thread time inside fn (pooled)
  std::int64_t job_wall_ns = 0;   // summed wall time of pooled Pool::run calls
};
PoolStats pool_stats();

// Publish pool gauges to the metrics registry from the activity since the
// previous call (first call covers process start): `pool.width`,
// `pool.queue_depth` (mean chunks per pooled job — how much work each fan-out
// had to distribute), and `pool.utilization` (busy time / (wall time x
// width), 0..1). Intended to be sampled at epoch boundaries; an interval with
// no pooled jobs leaves queue depth and utilization at 0.
void sample_pool_gauges();

}  // namespace cgps::par
