// Process-wide observability registry: named counters, gauges, and
// fixed-bucket histograms. All mutation paths are lock-free atomics, safe to
// call from util/parallel pool workers; instruments never feed back into any
// computation, so telemetry cannot perturb training results. (Distinct from
// train/metrics.hpp, which holds the paper's *evaluation* metrics.)
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cgps {

class JsonWriter;

class Counter {
 public:
  void add(std::int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Histogram with fixed upper-bound buckets chosen at registration: a sample
// lands in the first bucket whose bound is >= the sample, or in the implicit
// overflow bucket past the last bound. Tracks count and sum for mean
// recovery; bucket mutation is one relaxed atomic increment.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;        // upper bounds, ascending
    std::vector<std::int64_t> counts;  // bounds.size() + 1 (last = overflow)
    std::int64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;
  void reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> counts_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Interpolated quantile estimate (Prometheus-style) from a histogram
// snapshot: the quantile's rank is located in the cumulative bucket counts
// and the value interpolated linearly inside that bucket. The first bucket's
// lower edge is min(0, bounds[0]); ranks landing in the open overflow bucket
// yield +inf — there is no finite edge to interpolate against, and a capped
// value would be a fake quantile (check the snapshot's last count, exported
// as `overflow_count` in the JSON payload, to detect saturation). Returns
// NaN when the snapshot is empty or the histogram has no bounds, and is
// monotone in q, so p50 <= p95 <= p99.
double estimate_quantile(const Histogram::Snapshot& snap, double q);

// Registry of named instruments. Lookup is mutex-guarded; returned
// references stay valid for the process lifetime (instruments are never
// deleted). Re-registering a name returns the existing instrument.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  // Emit the full registry as one JSON object in value position:
  // {"counters":{...},"gauges":{...},"histograms":{name:{...}}}.
  void write_json(JsonWriter& w) const;

  // Counters only, as a flat {name: value} object (per-epoch telemetry).
  void write_counters_json(JsonWriter& w) const;

  // Gauges only, as a flat {name: value} object (per-epoch telemetry).
  void write_gauges_json(JsonWriter& w) const;

  // Zero every instrument (tests and bench isolation). Names stay
  // registered and references stay valid.
  void reset();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Convenience accessors against the process-wide registry.
Counter& metric_counter(std::string_view name);
Gauge& metric_gauge(std::string_view name);
Histogram& metric_histogram(std::string_view name, std::vector<double> bounds);

// Resident set size of this process in bytes (0 where unsupported).
std::int64_t current_rss_bytes();

}  // namespace cgps
