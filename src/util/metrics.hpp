// Process-wide observability registry: named counters, gauges, and
// fixed-bucket histograms. All mutation paths are lock-free atomics, safe to
// call from util/parallel pool workers; instruments never feed back into any
// computation, so telemetry cannot perturb training results. (Distinct from
// train/metrics.hpp, which holds the paper's *evaluation* metrics.)
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cgps {

class JsonWriter;

class Counter {
 public:
  void add(std::int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Histogram with fixed upper-bound buckets chosen at registration: a sample
// lands in the first bucket whose bound is >= the sample, or in the implicit
// overflow bucket past the last bound. Tracks count and sum for mean
// recovery; bucket mutation is one relaxed atomic increment.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;        // upper bounds, ascending
    std::vector<std::int64_t> counts;  // bounds.size() + 1 (last = overflow)
    std::int64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;
  void reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> counts_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Interpolated quantile estimate (Prometheus-style) from a histogram
// snapshot: the quantile's rank is located in the cumulative bucket counts
// and the value interpolated linearly inside that bucket. The first bucket's
// lower edge is min(0, bounds[0]); ranks landing in the open overflow bucket
// yield +inf — there is no finite edge to interpolate against, and a capped
// value would be a fake quantile (check the snapshot's last count, exported
// as `overflow_count` in the JSON payload, to detect saturation). Returns
// NaN when the snapshot is empty or the histogram has no bounds, and is
// monotone in q, so p50 <= p95 <= p99.
double estimate_quantile(const Histogram::Snapshot& snap, double q);

// Windowed counter: a ring of one-second epoch slots so a snapshot can
// report "the last W seconds" instead of process-lifetime totals (which can
// never show a regression after a long warm run). The caller supplies the
// epoch (seconds on any monotonic clock, e.g. trace::now_us() / 1000000);
// tests drive synthetic epochs. The hot path is one relaxed atomic add — the
// mutex is only taken when a slot turns over to a new second. A writer that
// stalls for longer than the ring (slots seconds) between the epoch check
// and its add may credit a later epoch; acceptable for telemetry.
class RollingCounter {
 public:
  explicit RollingCounter(int slots = 64);

  void add(std::int64_t now_s, std::int64_t delta = 1);

  // Sum over the last `window_s` seconds: epochs (now_s - window_s, now_s].
  // The current (partial) second is included. window_s is clamped to the
  // ring size — older epochs may already have been reclaimed.
  std::int64_t sum_window(std::int64_t now_s, int window_s) const;

 private:
  struct Slot {
    std::atomic<std::int64_t> epoch{-1};
    std::atomic<std::int64_t> value{0};
  };
  Slot& turn_over(std::int64_t now_s);
  mutable std::mutex turnover_mu_;
  std::vector<Slot> slots_;
};

// Windowed histogram: same one-second epoch ring as RollingCounter, holding
// per-slot bucket counts. merged() folds the live slots of the window into a
// regular Histogram::Snapshot so estimate_quantile() yields windowed
// p50/p95/p99 with the exact machinery the lifetime histograms use.
class RollingHistogram {
 public:
  explicit RollingHistogram(std::vector<double> bounds, int slots = 64);

  void observe(std::int64_t now_s, double v);

  Histogram::Snapshot merged(std::int64_t now_s, int window_s) const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct Slot {
    std::atomic<std::int64_t> epoch{-1};
    std::vector<std::atomic<std::int64_t>> counts;  // bounds.size() + 1
    std::atomic<std::int64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  Slot& turn_over(std::int64_t now_s);
  std::vector<double> bounds_;
  mutable std::mutex turnover_mu_;
  std::vector<Slot> slots_;
};

// Registry of named instruments. Lookup is mutex-guarded; returned
// references stay valid for the process lifetime (instruments are never
// deleted). Re-registering a name returns the existing instrument.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  // Emit the full registry as one JSON object in value position:
  // {"counters":{...},"gauges":{...},"histograms":{name:{...}}}.
  void write_json(JsonWriter& w) const;

  // Counters only, as a flat {name: value} object (per-epoch telemetry).
  void write_counters_json(JsonWriter& w) const;

  // Gauges only, as a flat {name: value} object (per-epoch telemetry).
  void write_gauges_json(JsonWriter& w) const;

  // Zero every instrument (tests and bench isolation). Names stay
  // registered and references stay valid.
  void reset();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Convenience accessors against the process-wide registry.
Counter& metric_counter(std::string_view name);
Gauge& metric_gauge(std::string_view name);
Histogram& metric_histogram(std::string_view name, std::vector<double> bounds);

// Resident set size of this process in bytes (0 where unsupported).
std::int64_t current_rss_bytes();

}  // namespace cgps
