// Minimal binary serialization used for model checkpoints (pre-train once,
// fine-tune later) and dataset caches. Little-endian POD framing with a magic
// header and explicit sizes; no versioned schema evolution needed here.
#pragma once

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace cgps {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);

  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_vector(const std::vector<float>& v);
  void write_i64_vector(const std::vector<std::int64_t>& v);
  void write_i8_vector(const std::vector<std::int8_t>& v);

 private:
  void write_raw(const void* data, std::size_t n);
  std::ofstream out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_vector();
  std::vector<std::int64_t> read_i64_vector();
  std::vector<std::int8_t> read_i8_vector();

 private:
  void read_raw(void* data, std::size_t n);
  std::ifstream in_;
};

}  // namespace cgps
