#include "util/metrics.hpp"

#include "util/json_writer.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#ifdef __linux__
#include <unistd.h>
#endif

namespace cgps {

namespace {

// Relaxed atomic add for doubles (atomic<double>::fetch_add needs no
// hardware support guarantee pre-C++20 on all targets; CAS is portable).
void atomic_add(std::atomic<double>& target, double delta) {
  double old = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(old, old + delta, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_) snap.counts.push_back(c.load(std::memory_order_relaxed));
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double estimate_quantile(const Histogram::Snapshot& snap, double q) {
  if (snap.count <= 0 || snap.bounds.empty())
    return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(snap.count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
    const double in_bucket = static_cast<double>(snap.counts[i]);
    if (in_bucket <= 0.0) continue;
    if (cumulative + in_bucket >= rank) {
      const double lo = i == 0 ? std::min(0.0, snap.bounds[0]) : snap.bounds[i - 1];
      const double hi = snap.bounds[i];
      const double frac = std::clamp((rank - cumulative) / in_bucket, 0.0, 1.0);
      return lo + (hi - lo) * frac;
    }
    cumulative += in_bucket;
  }
  // The rank lies in the open overflow bucket: there is no finite upper edge
  // to interpolate against, and reporting bounds.back() would silently cap
  // the quantile at the ladder's top. +inf serializes as JSON null; consumers
  // use the payload's overflow_count to tell "saturated" from "empty".
  return std::numeric_limits<double>::infinity();
}

RollingCounter::RollingCounter(int slots)
    : slots_(static_cast<std::size_t>(std::max(2, slots))) {}

RollingCounter::Slot& RollingCounter::turn_over(std::int64_t now_s) {
  Slot& slot = slots_[static_cast<std::size_t>(now_s) % slots_.size()];
  if (slot.epoch.load(std::memory_order_acquire) != now_s) {
    const std::scoped_lock lock(turnover_mu_);
    if (slot.epoch.load(std::memory_order_relaxed) != now_s) {
      slot.value.store(0, std::memory_order_relaxed);
      slot.epoch.store(now_s, std::memory_order_release);
    }
  }
  return slot;
}

void RollingCounter::add(std::int64_t now_s, std::int64_t delta) {
  turn_over(now_s).value.fetch_add(delta, std::memory_order_relaxed);
}

std::int64_t RollingCounter::sum_window(std::int64_t now_s, int window_s) const {
  const int w = std::clamp(window_s, 0, static_cast<int>(slots_.size()));
  std::int64_t total = 0;
  for (int back = 0; back < w; ++back) {
    const std::int64_t epoch = now_s - back;
    if (epoch < 0) break;
    const Slot& slot = slots_[static_cast<std::size_t>(epoch) % slots_.size()];
    if (slot.epoch.load(std::memory_order_acquire) == epoch)
      total += slot.value.load(std::memory_order_relaxed);
  }
  return total;
}

RollingHistogram::RollingHistogram(std::vector<double> bounds, int slots)
    : bounds_(std::move(bounds)), slots_(static_cast<std::size_t>(std::max(2, slots))) {
  std::sort(bounds_.begin(), bounds_.end());
  for (Slot& slot : slots_)
    slot.counts = std::vector<std::atomic<std::int64_t>>(bounds_.size() + 1);
}

RollingHistogram::Slot& RollingHistogram::turn_over(std::int64_t now_s) {
  Slot& slot = slots_[static_cast<std::size_t>(now_s) % slots_.size()];
  if (slot.epoch.load(std::memory_order_acquire) != now_s) {
    const std::scoped_lock lock(turnover_mu_);
    if (slot.epoch.load(std::memory_order_relaxed) != now_s) {
      for (auto& c : slot.counts) c.store(0, std::memory_order_relaxed);
      slot.count.store(0, std::memory_order_relaxed);
      slot.sum.store(0.0, std::memory_order_relaxed);
      slot.epoch.store(now_s, std::memory_order_release);
    }
  }
  return slot;
}

void RollingHistogram::observe(std::int64_t now_s, double v) {
  Slot& slot = turn_over(now_s);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  slot.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(slot.sum, v);
}

Histogram::Snapshot RollingHistogram::merged(std::int64_t now_s, int window_s) const {
  Histogram::Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  const int w = std::clamp(window_s, 0, static_cast<int>(slots_.size()));
  for (int back = 0; back < w; ++back) {
    const std::int64_t epoch = now_s - back;
    if (epoch < 0) break;
    const Slot& slot = slots_[static_cast<std::size_t>(epoch) % slots_.size()];
    if (slot.epoch.load(std::memory_order_acquire) != epoch) continue;
    for (std::size_t i = 0; i < snap.counts.size(); ++i)
      snap.counts[i] += slot.counts[i].load(std::memory_order_relaxed);
    snap.count += slot.count.load(std::memory_order_relaxed);
    snap.sum += slot.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::scoped_lock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  const std::scoped_lock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  const std::scoped_lock lock(mu_);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.field(name, g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot snap = h->snapshot();
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (const double b : snap.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (const std::int64_t c : snap.counts) w.value(c);
    w.end_array();
    w.field("count", snap.count);
    w.field("sum", snap.sum);
    // Samples past the last bound. Non-zero means the quantiles below are
    // saturated (+inf, serialized null) — trend tooling must not trust them.
    w.field("overflow_count", snap.counts.empty() ? 0 : snap.counts.back());
    // Interpolated quantiles (NaN serializes as null when count == 0).
    w.field("p50", estimate_quantile(snap, 0.50));
    w.field("p95", estimate_quantile(snap, 0.95));
    w.field("p99", estimate_quantile(snap, 0.99));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void MetricsRegistry::write_counters_json(JsonWriter& w) const {
  const std::scoped_lock lock(mu_);
  w.begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c->value());
  w.end_object();
}

void MetricsRegistry::write_gauges_json(JsonWriter& w) const {
  const std::scoped_lock lock(mu_);
  w.begin_object();
  for (const auto& [name, g] : gauges_) w.field(name, g->value());
  w.end_object();
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

Counter& metric_counter(std::string_view name) {
  return MetricsRegistry::instance().counter(name);
}

Gauge& metric_gauge(std::string_view name) { return MetricsRegistry::instance().gauge(name); }

Histogram& metric_histogram(std::string_view name, std::vector<double> bounds) {
  return MetricsRegistry::instance().histogram(name, std::move(bounds));
}

std::int64_t current_rss_bytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long size_pages = 0, rss_pages = 0;
  const int got = std::fscanf(f, "%lld %lld", &size_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::int64_t>(rss_pages) * static_cast<std::int64_t>(page);
#else
  return 0;
#endif
}

}  // namespace cgps
