#include "util/json_writer.hpp"

#include "util/logging.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cgps {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c) & 0xFF);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!counts_.empty()) {
    if (counts_.back() > 0) out_ += ',';
    ++counts_.back();
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  counts_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  counts_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!counts_.empty() && counts_.back() > 0) out_ += ',';
  if (!counts_.empty()) ++counts_.back();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_ += json;
  return *this;
}

const JsonValue* JsonValue::find(std::string_view k) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object)
    if (name == k) return &value;
  return nullptr;
}

namespace {

// Recursive-descent JSON parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue v;
    if (!parse_value(v, 0)) {
      if (error) *error = error_.empty() ? "parse error" : error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error) *error = "trailing characters at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& msg) {
    if (error_.empty()) error_ = msg + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':'");
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  static void append_utf8(std::string& s, std::uint32_t cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad hex digit in \\u escape");
      }
    }
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char in string");
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
              return fail("unpaired surrogate");
            pos_ += 2;
            std::uint32_t lo = 0;
            if (!parse_hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    eat('-');
    // JSON forbids leading zeros: "0" is the only integer part starting '0'.
    if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
      return fail("leading zero in number");
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("bad number");
    out.type = JsonValue::Type::kNumber;
    out.number = v;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

JsonlFile::JsonlFile(std::string path, std::int64_t max_bytes)
    : path_(std::move(path)), max_bytes_(max_bytes) {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ != nullptr) {
    // "ab" positions at end-of-file; the offset is the current size.
    const long pos = std::ftell(file_);
    bytes_ = pos > 0 ? static_cast<std::int64_t>(pos) : 0;
  }
}

JsonlFile::~JsonlFile() {
  if (file_ != nullptr) std::fclose(file_);
}

bool rotate_file(const std::string& path, const std::string& rotated,
                 std::string* detail, bool allow_rename) {
  // A failed remove only matters if the stale target then blocks the rename
  // or copy below; ENOENT (nothing to remove) is the common, harmless case.
  std::remove(rotated.c_str());
  if (allow_rename && std::rename(path.c_str(), rotated.c_str()) == 0) return true;

  // rename fails across filesystems (EXDEV) and on blocked targets: fall
  // back to streaming the bytes over, then truncating the source.
  std::FILE* src = std::fopen(path.c_str(), "rb");
  if (src == nullptr) {
    if (detail) *detail = "cannot reopen " + path + " for copy";
    return false;
  }
  bool copied = false;
  std::FILE* dst = std::fopen(rotated.c_str(), "wb");
  if (dst == nullptr) {
    if (detail) *detail = "cannot create " + rotated;
  } else {
    copied = true;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), src)) > 0) {
      if (std::fwrite(buf, 1, n, dst) != n) {
        copied = false;
        break;
      }
    }
    if (std::ferror(src)) copied = false;
    if (std::fclose(dst) != 0) copied = false;
    if (!copied && detail) *detail = "short copy into " + rotated;
  }
  std::fclose(src);
  // Truncate the source even when the copy failed: the size cap is the
  // contract, and the caller is told (via `false`) that the old records
  // were lost rather than preserved.
  std::FILE* trunc = std::fopen(path.c_str(), "wb");
  if (trunc != nullptr) {
    std::fclose(trunc);
  } else {
    copied = false;
    if (detail && detail->empty()) *detail = "cannot truncate " + path;
  }
  return copied;
}

void JsonlFile::write_line(std::string_view line) {
  if (file_ == nullptr) return;
  const std::scoped_lock lock(mu_);
  const std::int64_t incoming = static_cast<std::int64_t>(line.size()) + 1;
  if (max_bytes_ > 0 && bytes_ > 0 && bytes_ + incoming > max_bytes_) {
    std::fclose(file_);
    std::string detail;
    if (!rotate_file(path_, path_ + ".1", &detail)) {
      log_warn("run-log rotation of ", path_, " failed (", detail,
               "); older records were dropped to hold the size cap");
    }
    file_ = std::fopen(path_.c_str(), "ab");
    bytes_ = 0;
    if (file_ == nullptr) return;
  }
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
  bytes_ += incoming;
}

}  // namespace cgps
