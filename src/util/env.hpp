// Environment knobs for scaling benchmark fidelity and routing telemetry.
// The authoritative reference table for every CIRCUITGPS_* variable lives in
// README.md ("Environment variables").
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace cgps {

// Strict numeric parsing shared by every CIRCUITGPS_* reader: the whole
// string must be one number ("4x", "1.5abc", "" and out-of-range values all
// yield nullopt). Call sites log one warning per malformed variable value and
// fall back to their documented default instead of silently accepting a
// prefix the way std::stod/std::stoi would.
std::optional<double> parse_env_double(const char* text);
std::optional<long long> parse_env_int(const char* text);

// Value of CIRCUITGPS_SCALE (default 1.0). Benches multiply dataset sizes
// and epoch counts by this factor; >1 gives higher-fidelity, slower runs.
double bench_scale();

// Scale a base count, keeping at least `min_value`.
int scaled(int base, int min_value = 1);

// Value of CIRCUITGPS_THREADS (clamped to >= 1). Unset or invalid values
// fall back to std::thread::hardware_concurrency() (>= 1). This is the
// width of the shared work pool in util/parallel; 1 keeps every hot path
// on the calling thread.
int env_thread_count();

// Value of CIRCUITGPS_RUN_LOG: path of the per-epoch JSONL training log
// (DESIGN.md §8), or "" when unset. Read fresh on every call (not cached)
// so tests and long-lived processes can retarget the log between runs.
std::string env_run_log_path();

// Size cap for the CIRCUITGPS_RUN_LOG file in bytes, from
// CIRCUITGPS_RUN_LOG_MAX_MB (fractional values allowed, so tests can force
// rotation cheaply). 0 when unset or invalid = no cap. A write pushing the
// log past the cap rotates it to `<path>.1` first (util/json_writer).
std::int64_t env_run_log_max_bytes();

// Value of CIRCUITGPS_BENCH_DIR: directory that receives BENCH_<name>.json
// reports; "." when unset. Read fresh on every call.
std::string env_bench_dir();

// Value of CIRCUITGPS_TRACE: path of the cgps-trace-v1 span stream
// (DESIGN.md §8), or "" when unset. Read fresh on every call so tests can
// retarget the stream between spans.
std::string env_trace_path();

// True when CIRCUITGPS_TRACE is set to a non-empty value. Allocation-free:
// this sits on the TraceSpan destructor path, which must stay cheap when
// streaming is off.
bool env_trace_enabled();

// Execution engine selected by CIRCUITGPS_EXEC. kEager (default) runs the
// per-op autograd tape; kPlanned routes supported models through the
// compiled plan executor in src/exec/ (eager remains the oracle and the
// fallback for unsupported configs). Read fresh on every call so tests can
// flip modes between runs.
enum class ExecMode { kEager, kPlanned };
ExecMode env_exec_mode();

// Kernel backend selected by CIRCUITGPS_BACKEND for the planned executor.
// kAuto (default) picks the fastest backend the CPU supports at runtime;
// kScalar forces the bit-exact reference kernels (what the determinism
// tests pin); kAvx2 forces the AVX2/FMA kernels and falls back to scalar
// with a warning when the CPU lacks them. Read fresh on every call.
enum class BackendKind { kAuto, kScalar, kAvx2 };
BackendKind env_backend();

// Weight quantization mode selected by CIRCUITGPS_QUANT for the planned
// executor's inference path. kOff (default) keeps every forward on fp32
// weights; kInt8 swaps kLinear/kLinearRelu/kGather forwards onto symmetric
// per-row int8 weights with fp32 accumulation (src/exec/quant). Training and
// backward stay fp32 — a quantized PlanRunner refuses to build a backward
// schedule. Read fresh on every call so tests can flip modes between runs.
enum class QuantMode { kOff, kInt8 };
QuantMode env_quant_mode();

// cgps_serve daemon defaults (DESIGN.md §11). Each CLI flag on the tool
// overrides the matching variable; the variable overrides the built-in
// default. All are read fresh on every call so tests can retarget them.
//
// CIRCUITGPS_SERVE_PORT: TCP port to bind on 127.0.0.1 (0 = ephemeral).
int env_serve_port();
// CIRCUITGPS_SERVE_MAX_BATCH: coalesced-batch size cap per forward pass.
int env_serve_max_batch();
// CIRCUITGPS_SERVE_QUEUE_CAP: admission-queue bound; submissions beyond it
// are rejected immediately with status `overloaded` (backpressure).
int env_serve_queue_cap();
// CIRCUITGPS_SERVE_DEADLINE_MS: default per-request deadline in
// milliseconds, applied when a request carries deadline_us == 0. Requests
// still queued past their deadline are shed with status `timeout`.
int env_serve_deadline_ms();

// Value of CIRCUITGPS_SERVE_ACCESS_LOG: path of the per-request
// cgps-serve-access-v1 JSONL access log emitted by the serving core
// (DESIGN.md §11), or "" when unset (logging off). Read fresh on every call
// so tests and long-lived daemons can retarget it; the file honors the
// CIRCUITGPS_RUN_LOG_MAX_MB rotation cap.
std::string env_serve_access_log_path();

// Slow-request threshold in milliseconds from CIRCUITGPS_SERVE_SLOW_MS
// (fractional values allowed, so tests can trip it cheaply). Requests whose
// total latency exceeds it are additionally logged at warn level. 0 when
// unset or invalid = slow-request warnings off.
double env_serve_slow_ms();

// Raw value of CGPS_LOG_LEVEL ("" when unset). util/logging owns the
// parse (and the one-shot warning for unknown names) because translating
// to LogLevel from here would invert the env -> logging dependency.
std::string env_log_level_name();

}  // namespace cgps
