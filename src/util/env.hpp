// Environment knobs for scaling benchmark fidelity.
#pragma once

namespace cgps {

// Value of CIRCUITGPS_SCALE (default 1.0). Benches multiply dataset sizes
// and epoch counts by this factor; >1 gives higher-fidelity, slower runs.
double bench_scale();

// Scale a base count, keeping at least `min_value`.
int scaled(int base, int min_value = 1);

// Value of CIRCUITGPS_THREADS (clamped to >= 1). Unset or invalid values
// fall back to std::thread::hardware_concurrency() (>= 1). This is the
// width of the shared work pool in util/parallel; 1 keeps every hot path
// on the calling thread.
int env_thread_count();

}  // namespace cgps
