#include "util/trace.hpp"

#include "util/env.hpp"
#include "util/json_writer.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#ifdef __linux__
#include <unistd.h>
#endif

namespace cgps {

namespace trace {

namespace {

std::int64_t process_pid() {
#ifdef __linux__
  return static_cast<std::int64_t>(::getpid());
#else
  return 0;
#endif
}

// Event sink guarded by one mutex: reopened whenever CIRCUITGPS_TRACE
// changes between calls (tests retarget it), dropped when it is unset. A
// path that fails to open is remembered so the warning fires once.
struct Sink {
  std::mutex mu;
  std::string path;  // path the current file (or failure) corresponds to
  std::unique_ptr<JsonlFile> file;
};

Sink& sink_state() {
  static Sink* s = new Sink();  // never destroyed (spans run at exit)
  return *s;
}

// Metadata header emitted once per opened file: tags the stream with the
// schema and run id so mixed logs stay attributable.
void write_header(JsonlFile& file) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "cgps-trace-v1");
  w.field("run_id", make_run_id());
  w.field("name", "process_name");
  w.field("ph", "M");
  w.field("pid", process_pid());
  w.key("args").begin_object().field("name", "circuitgps").end_object();
  w.end_object();
  file.write_line(w.str());
}

// Returns the open sink for the current CIRCUITGPS_TRACE value, or nullptr
// when tracing is off (or the path cannot be opened).
JsonlFile* sink() {
  const std::string path = env_trace_path();
  Sink& s = sink_state();
  const std::scoped_lock lock(s.mu);
  if (path.empty()) {
    s.file.reset();
    s.path.clear();
    return nullptr;
  }
  if (s.path != path) {
    s.path = path;
    s.file = std::make_unique<JsonlFile>(s.path);
    if (!s.file->ok()) {
      log_warn("CIRCUITGPS_TRACE: cannot open ", s.path, "; span streaming disabled");
      s.file.reset();
    } else {
      write_header(*s.file);
    }
  }
  return s.file.get();
}

void write_event(std::string_view name, const char* phase, std::int64_t ts_us,
                 double dur_s, bool with_dur) {
  if (!stream_enabled()) return;  // keep the off path lock-free
  JsonlFile* file = sink();
  if (file == nullptr) return;
  JsonWriter w;
  w.begin_object();
  w.field("name", name);
  w.field("cat", "cgps");
  w.field("ph", phase);
  w.field("ts", ts_us);
  if (with_dur) w.field("dur", static_cast<std::int64_t>(dur_s * 1e6));
  w.field("pid", process_pid());
  w.field("tid", thread_id());
  w.end_object();
  file->write_line(w.str());
}

// Thread-local stack of live span names (pointers into the owning
// TraceSpan, which strictly outlives its stack entry).
thread_local std::vector<const std::string*> t_stack;

}  // namespace

bool stream_enabled() { return env_trace_enabled(); }

std::int64_t now_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start).count();
}

int depth() { return static_cast<int>(t_stack.size()); }

std::string_view current_span() {
  return t_stack.empty() ? std::string_view() : std::string_view(*t_stack.back());
}

int thread_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Histogram& latency_histogram(std::string_view name) {
  // 1-2-5 ladder over 1 µs .. 100 s, in seconds: wide enough for a single
  // subgraph extraction and a whole training epoch alike.
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double decade = 1e-6; decade < 1e3; decade *= 10.0) {
      b.push_back(decade);
      b.push_back(2.0 * decade);
      b.push_back(5.0 * decade);
    }
    return b;
  }();
  return metric_histogram("trace." + std::string(name), bounds);
}

void record_complete(std::string_view name, std::int64_t start_us, double dur_s) {
  latency_histogram(name).observe(dur_s);
  write_event(name, "X", start_us, dur_s, /*with_dur=*/true);
}

std::string make_run_id() {
  const auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  char buf[48];
  std::snprintf(buf, sizeof buf, "%llx-%llx", static_cast<unsigned long long>(wall_us),
                static_cast<unsigned long long>(process_pid()));
  return buf;
}

}  // namespace trace

TraceSpan::TraceSpan(std::string_view name)
    : name_(name), start_us_(trace::now_us()), hist_(&trace::latency_histogram(name)) {
  trace::t_stack.push_back(&name_);
  trace::write_event(name_, "B", start_us_, 0.0, /*with_dur=*/false);
}

TraceSpan::~TraceSpan() {
  const std::int64_t end_us = trace::now_us();
  hist_->observe(static_cast<double>(end_us - start_us_) / 1e6);
  trace::write_event(name_, "E", end_us, 0.0, /*with_dur=*/false);
  trace::t_stack.pop_back();
}

}  // namespace cgps
