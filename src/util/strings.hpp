// Small string helpers shared by the SPICE/SPF parsers and table printers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cgps {

// Split on any run of whitespace; no empty tokens.
std::vector<std::string> split_ws(std::string_view s);

// Split on a single-character delimiter; empty tokens preserved.
std::vector<std::string> split(std::string_view s, char delim);

std::string trim(std::string_view s);
std::string to_lower(std::string_view s);

bool starts_with_icase(std::string_view s, std::string_view prefix);

// Parse a SPICE number with optional engineering suffix:
// f(1e-15) p(1e-12) n(1e-9) u(1e-6) m(1e-3) k(1e3) x/meg(1e6) g(1e9).
// Trailing unit garbage after the suffix is ignored ("10pF" -> 1e-11).
std::optional<double> parse_spice_number(std::string_view s);

// Format seconds/values compactly for tables, e.g. 0.0173, 1446.1.
std::string format_fixed(double v, int decimals);

// Format a value with an engineering suffix (e.g. 1.25e-15 -> "1.25f").
std::string format_si(double v, int decimals = 3);

}  // namespace cgps
