// Streaming JSON/JSONL emission and a minimal parser for validating emitted
// documents. The writer manages commas and escaping so call sites stay
// declarative; the parser exists for tests and smoke checks (round-tripping
// our own telemetry), not as a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cgps {

// Escape a UTF-8 string for inclusion inside a JSON string literal
// (quotes, backslashes, and control characters < 0x20).
std::string json_escape(std::string_view s);

// Incremental JSON document builder. Commas are inserted automatically;
// keys are only legal directly inside an object. Non-finite doubles are
// emitted as null (JSON has no NaN/Inf).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null_value();

  template <typename T>
  JsonWriter& field(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }
  JsonWriter& null_field(std::string_view k) {
    key(k);
    return null_value();
  }

  // Splice a pre-rendered JSON value (object/array/scalar) in value position.
  JsonWriter& raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void before_value();
  std::string out_;
  // One entry per open container: number of items emitted so far.
  std::vector<std::int64_t> counts_;
  bool pending_key_ = false;
};

// Parsed JSON value (tagged union). Object member order is preserved.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  bool has(std::string_view key) const { return find(key) != nullptr; }
};

// Strict-ish recursive-descent parse of a full JSON document (trailing
// whitespace allowed, trailing garbage rejected). Returns nullopt and fills
// `error` (if given) on malformed input.
std::optional<JsonValue> json_parse(std::string_view text, std::string* error = nullptr);

// Move `path` to `rotated` for log rotation: remove any stale `rotated`,
// then rename; when rename fails (EXDEV across filesystems, or a blocked
// target) fall back to copy-then-truncate so the source keeps honoring a
// size cap. Returns false — with a human-readable reason in `detail` — only
// when the old contents could not be preserved; the source file is truncated
// even then, because an unbounded log is the worse failure. `allow_rename =
// false` forces the copy fallback (used by tests to exercise that path).
bool rotate_file(const std::string& path, const std::string& rotated,
                 std::string* detail = nullptr, bool allow_rename = true);

// Append-mode JSONL sink: one record per line, flushed per line so partial
// runs still leave a readable log. Thread-safe per line. With a non-zero
// `max_bytes`, a write that would push the file past the cap first rotates
// it to `<path>.1` (replacing any previous rotation, falling back to
// copy+truncate when rename fails — see rotate_file) and restarts the file,
// so long sweeps keep a bounded, always-fresh tail. Rotation failures are
// reported through util/logging, never by growing past the cap.
class JsonlFile {
 public:
  explicit JsonlFile(std::string path, std::int64_t max_bytes = 0);
  ~JsonlFile();
  JsonlFile(const JsonlFile&) = delete;
  JsonlFile& operator=(const JsonlFile&) = delete;

  bool ok() const { return file_ != nullptr; }
  void write_line(std::string_view line);

 private:
  std::mutex mu_;
  std::string path_;
  std::FILE* file_ = nullptr;
  std::int64_t max_bytes_ = 0;
  std::int64_t bytes_ = 0;  // current file size (tracked for rotation)
};

}  // namespace cgps
