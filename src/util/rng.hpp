// Deterministic pseudo-random number generation for the whole library.
//
// Everything in CircuitGPS that needs randomness (weight init, dropout,
// negative sampling, synthetic layout jitter, ...) draws from an explicit
// `Rng` object so experiments are reproducible from a single seed. The
// generator is xoshiro256** (Blackman & Vigna), seeded through splitmix64.
#pragma once

#include <cstdint>
#include <vector>

namespace cgps {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  // Re-initialize the state from a 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  // Standard normal via Box-Muller (cached second value).
  double normal();

  // Normal with given mean / stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // Bernoulli trial with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

  // Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) (k <= n), order unspecified.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  // Derive an independent child generator (for per-worker streams).
  Rng fork();

 private:
  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cgps
