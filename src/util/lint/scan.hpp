// Shared source-tree scanner for the static-analysis family (cgps_lint and
// cgps_deps). One scan of the tree — collect, sort, read, and lex every
// C++ file under src/, tools/, bench/, examples/, and tests/ — feeds both
// the per-line invariant rules (lint.cpp) and the whole-program include
// graph analysis (include_graph.cpp), so the two checkers never disagree
// about what a comment or a string literal is.
//
// Lexing is offset-preserving: the stripped text has comments and literal
// contents blanked with spaces but keeps every byte and newline in place,
// so offsets computed on the stripped text index straight into the raw
// text. Files are lexed in parallel over util/parallel; the returned order
// is the sorted relative-path order regardless of thread count.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cgps::lint {

bool is_ident_char(char c);

// One string/char literal found by the lexer. `start` is the opening
// quote's byte offset in the file, `end` the closing quote's; `value` is
// the raw content between them (escapes unprocessed — the rules only
// substring-match).
struct Literal {
  std::size_t start = 0;
  std::size_t end = 0;
  int line = 0;
  std::string value;
};

struct LexResult {
  std::string stripped;
  std::vector<Literal> literals;
};

// Single pass that blanks comment and literal contents (offset-preserving)
// while collecting the literals. Quotes themselves survive in the stripped
// text so call-shape checks can still see where a literal argument starts.
LexResult lex(std::string_view text);

// One scanned file, ready for rule evaluation.
struct FileUnit {
  std::string rel;  // path relative to the scanned root, '/'-separated
  std::string raw;
  LexResult lexed;
  std::vector<std::size_t> starts;  // line-start offsets (line_of/line_text)
  bool is_header = false;
  bool is_test = false;  // under tests/
};

// Read `path` in binary mode into `out`; false when unreadable.
bool read_file(const std::string& path, std::string& out);

// Scan a repo root: every .cpp/.hpp/.cc/.h under src/, tools/, bench/,
// examples/, and tests/, sorted by path, read and lexed (in parallel).
// On an unreadable file, `error` gets a message and the scan is aborted.
std::vector<FileUnit> scan_tree(const std::string& root, std::string* error);

// --- text helpers shared by the rule implementations ---------------------

std::string trim_copy(std::string_view s);

// Byte offset -> 1-based line number lookup table.
std::vector<std::size_t> line_starts(std::string_view text);
int line_of(const std::vector<std::size_t>& starts, std::size_t offset);
std::string line_text(std::string_view text, const std::vector<std::size_t>& starts,
                      int line);

// Offsets of `token` in `text` with identifier boundaries on both sides.
std::vector<std::size_t> token_offsets(std::string_view text, std::string_view token);

std::size_t skip_ws(std::string_view text, std::size_t i);

}  // namespace cgps::lint
