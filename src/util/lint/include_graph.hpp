// cgps_deps: whole-program include-graph analysis (DESIGN.md §9). Where
// lint.cpp checks per-line invariants, this subsystem parses every
// `#include` in the tree (through the same offset-preserving stripped
// lexer), resolves project headers to modules, and checks structural
// properties no substring rule can see:
//
//   layering-violation        a src/<A> file includes a src/<B> header but
//                             the edge `A -> B` is not declared in the
//                             committed module-DAG manifest
//                             tools/cgps_layering.txt
//   layering-manifest-stale   a manifest edge no include realizes (the
//                             manifest is shrink-only, like the allowlist)
//   include-cycle             project headers that include each other
//                             (any SCC of size > 1, or a self-include)
//   include-order             include-order hygiene: own header first,
//                             then project headers, then system headers;
//                             contiguous runs sorted; no duplicates
//                             (includes under #if/#ifdef are exempt)
//   unused-include            IWYU-lite: a project header none of whose
//                             declared top-level symbols appear in the
//                             includer
//   atomic-order-unmanifested a memory_order_relaxed/acquire/release site
//                             in non-test code missing from the reviewed
//                             tools/cgps_atomics.txt manifest
//   atomics-manifest-stale    an atomics-manifest row matching no site
//   atomics-manifest-unjustified  a row without a justification
//   volatile-banned           `volatile` outside the documented q8_combine
//                             contraction barrier (src/exec/quant.hpp)
//   module-map-drift          the README.md (and, when present,
//                             docs/OPERATIONS.md) module-map table lists a
//                             module that does not exist, or misses one
//                             that does
//
// Both manifest rules are skipped when their manifest file is absent, so
// fixture trees stay clean by default. The analysis runs inside run_lint
// (one shared tree scan) and standalone through the cgps_deps CLI
// (`--check` for CI, `--dot` to render the module DAG for docs).
#pragma once

#include "util/lint/lint.hpp"
#include "util/lint/scan.hpp"

#include <string>
#include <vector>

namespace cgps::lint {

// One deduplicated src-module dependency, with the first include site (in
// sorted file order) that realizes it.
struct ModuleEdge {
  std::string from;
  std::string to;
  std::string example_file;
  int example_line = 0;
};

struct DepsOptions {
  std::string root;
  // Manifest paths; empty = `<root>/tools/cgps_layering.txt` and
  // `<root>/tools/cgps_atomics.txt`. A missing file disables its rule.
  std::string layering_path;
  std::string atomics_path;
};

struct DepsReport {
  std::vector<Finding> findings;
  std::vector<ModuleEdge> edges;  // actual src-module graph, sorted
  int files_scanned = 0;
  double wall_ms = 0.0;
  std::string error;  // non-empty when the scan itself failed (exit 2)
};

// Run the include-graph rules over an already-scanned tree (run_lint path:
// one scan feeds both rule families).
DepsReport analyze_includes(const std::vector<FileUnit>& units,
                            const DepsOptions& options);

// Scan `options.root` and analyze (cgps_deps CLI path).
DepsReport run_deps(const DepsOptions& options);

// Graphviz rendering of the module DAG, deterministic node/edge order.
std::string render_dot(const std::vector<ModuleEdge>& edges);

// Top-level declared symbols of a header (types, enumerators, namespace-
// scope functions/variables/aliases, macro names), as used by the
// unused-include rule. Exposed for tests.
std::vector<std::string> exported_symbols(const FileUnit& header);

// CLI driver for tools/cgps_deps:
//   cgps_deps <repo-root> [--check] [--dot] [--layering FILE] [--atomics FILE]
// `--check` (the default) appends findings and a summary to *out and
// returns 0 clean / 1 violations / 2 bad usage or unreadable inputs;
// `--dot` appends the DOT graph instead and returns 0/2.
int deps_main(int argc, const char* const* argv, std::string& out);

}  // namespace cgps::lint
