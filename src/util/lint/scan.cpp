#include "util/lint/scan.hpp"

#include "util/parallel.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace cgps::lint {

namespace fs = std::filesystem;

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

LexResult lex(std::string_view text) {
  LexResult r;
  r.stripped.assign(text.begin(), text.end());
  std::string& s = r.stripped;
  const std::size_t n = text.size();
  int line = 1;
  std::size_t i = 0;
  const auto blank = [&](std::size_t j) {
    if (s[j] != '\n') s[j] = ' ';
  };
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') blank(i++);
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      blank(i);
      blank(i + 1);
      i += 2;
      while (i < n && !(text[i] == '*' && i + 1 < n && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        blank(i++);
      }
      if (i < n) {
        blank(i);
        blank(i + 1);
        i += 2;
      }
    } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
               (i == 0 || !is_ident_char(text[i - 1]))) {
      // Raw string literal R"delim( ... )delim".
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && text[p] != '(' && text[p] != '\n') delim += text[p++];
      const std::string close = ")" + delim + "\"";
      const std::size_t body = p < n ? p + 1 : n;
      std::size_t end = text.find(close, body);
      if (end == std::string_view::npos) end = n;
      Literal lit;
      lit.start = i + 1;  // the opening quote
      lit.line = line;
      lit.value.assign(text.substr(body, end - body));
      const std::size_t stop = std::min(end + close.size(), n);
      lit.end = stop > 0 ? stop - 1 : 0;
      for (std::size_t j = i + 2; j < std::min(end + close.size() - 1, n); ++j) {
        if (text[j] == '\n')
          ++line;
        else
          blank(j);
      }
      r.literals.push_back(std::move(lit));
      i = stop;
    } else if (c == '"' || (c == '\'' && (i == 0 || !is_ident_char(text[i - 1])))) {
      const char quote = c;
      Literal lit;
      lit.start = i;
      lit.line = line;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote && text[j] != '\n') {
        if (text[j] == '\\' && j + 1 < n && text[j + 1] != '\n') {
          lit.value += text[j];
          lit.value += text[j + 1];
          blank(j);
          blank(j + 1);
          j += 2;
        } else {
          lit.value += text[j];
          blank(j++);
        }
      }
      lit.end = j < n ? j : n - 1;
      if (quote == '"') r.literals.push_back(std::move(lit));
      i = j < n ? j + 1 : n;
    } else {
      ++i;
    }
  }
  return r;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::vector<FileUnit> scan_tree(const std::string& root, std::string* error) {
  const fs::path root_path(root);
  std::error_code ec;

  // Deterministic file order: collect, then sort by relative path.
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tools", "bench", "examples", "tests"}) {
    const fs::path sub = root_path / dir;
    if (!fs::is_directory(sub, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(sub, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h")
        files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());

  // Read + lex in parallel: each index owns its slot, so the result vector
  // is identical at any thread count. Reads that fail surface through a
  // per-slot empty `rel`; the first failing path (in sorted order) wins the
  // error message.
  std::vector<FileUnit> units(files.size());
  std::vector<char> failed(files.size(), 0);
  par::parallel_for(0, static_cast<std::int64_t>(files.size()), 1,
                    [&](std::int64_t b, std::int64_t e) {
                      for (std::int64_t idx = b; idx < e; ++idx) {
                        const auto u = static_cast<std::size_t>(idx);
                        FileUnit& f = units[u];
                        std::error_code rel_ec;
                        f.rel = fs::relative(files[u], root_path, rel_ec).generic_string();
                        if (rel_ec) f.rel = files[u].generic_string();
                        if (!read_file(files[u].string(), f.raw)) {
                          failed[u] = 1;
                          continue;
                        }
                        f.lexed = lex(f.raw);
                        f.starts = line_starts(f.raw);
                        const std::string ext = files[u].extension().string();
                        f.is_header = ext == ".hpp" || ext == ".h";
                        f.is_test = f.rel.rfind("tests/", 0) == 0;
                      }
                    });
  for (std::size_t u = 0; u < units.size(); ++u) {
    if (failed[u] != 0) {
      if (error != nullptr && error->empty()) *error = "cannot read " + units[u].rel;
      return {};
    }
  }
  return units;
}

std::string trim_copy(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::size_t> line_starts(std::string_view text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i)
    if (text[i] == '\n') starts.push_back(i + 1);
  return starts;
}

int line_of(const std::vector<std::size_t>& starts, std::size_t offset) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), offset);
  return static_cast<int>(it - starts.begin());
}

std::string line_text(std::string_view text, const std::vector<std::size_t>& starts,
                      int line) {
  const std::size_t b = starts[static_cast<std::size_t>(line - 1)];
  const std::size_t e = text.find('\n', b);
  return trim_copy(text.substr(b, e == std::string_view::npos ? e : e - b));
}

std::vector<std::size_t> token_offsets(std::string_view text, std::string_view token) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t after = pos + token.size();
    const bool right_ok = after >= text.size() || !is_ident_char(text[after]);
    if (left_ok && right_ok) out.push_back(pos);
    pos = after;
  }
  return out;
}

std::size_t skip_ws(std::string_view text, std::size_t i) {
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  return i;
}

}  // namespace cgps::lint
