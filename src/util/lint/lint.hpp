// cgps_lint: source-tree invariant checker for the conventions that the
// observability and env layers turned into load-bearing contracts
// (DESIGN.md §9). Scans src/, tools/, bench/, examples/, and tests/ under a
// repo root and reports `file:line rule message` findings with the same
// 0/1/2 exit contract as cgps_bench_diff. Logic lives here (not in the CLI)
// so fixture trees can exercise every rule without spawning a binary.
//
// Rules:
//   getenv-outside-env      std::getenv anywhere but src/util/env.cpp
//   env-var-undocumented    CIRCUITGPS_*/CGPS_* literal in non-test code
//                           missing from the README.md env-variable table
//   env-var-unreferenced    table row whose variable no non-test code
//                           references
//   metric-key-format       literal metric_counter/gauge/histogram or
//                           TraceSpan name that is not a dotted lowercase
//                           key (DESIGN.md §8)
//   metric-key-registry     literal instrument/span name in non-test code
//                           missing from the tools/cgps_metric_keys.txt
//                           manifest, or a manifest row no code registers;
//                           skipped when the manifest file is absent
//   header-pragma-once      header without #pragma once
//   header-using-namespace  `using namespace` at any scope in a header
//   naked-new               naked new/delete in non-test code
//   no-cout-outside-tools   qualified std::cout in library code (src/);
//                           stdout belongs to the CLIs, diagnostics to
//                           util/logging (stderr)
//   stale-allowlist         allowlist entry that matched nothing
//
// The include-graph rule family (layering-violation, include-cycle,
// include-order, unused-include, the atomics/volatile discipline, and
// module-map-drift — see util/lint/include_graph.hpp) runs as part of
// run_lint over the same tree scan, and standalone through cgps_deps.
//
// When docs/OPERATIONS.md exists, the env-var cross-check additionally
// requires its environment-variable table to stay in lockstep with the
// code, exactly like the README table.
//
// Scanning and per-file rule evaluation are parallelized over
// util/parallel; findings and cross-check winners are merged in sorted
// file order, so output is identical at any thread count.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cgps::lint {

struct Finding {
  std::string file;     // path relative to the scanned root
  int line = 0;         // 1-based; 0 for file-level findings
  std::string rule;     // stable rule id, e.g. "getenv-outside-env"
  std::string message;
  std::string excerpt;  // trimmed offending source line ("" for file-level)
  bool allowlisted = false;
};

// One grandfathered exception: `<rule> <path-suffix> [line substring...]`.
// Matches a finding when the rule is equal, the finding's file ends with
// path_suffix, and (if given) the offending line contains the substring.
struct AllowlistEntry {
  std::string rule;
  std::string path_suffix;
  std::string needle;
  int line_no = 0;  // line in the allowlist file, for diagnostics
  int uses = 0;     // findings suppressed; 0 after a run = stale
};

struct LintOptions {
  std::string root;            // repo root (contains src/, README.md, ...)
  std::string allowlist_path;  // optional allowlist file
};

struct LintReport {
  std::vector<Finding> findings;      // every finding, allowlisted included
  std::vector<AllowlistEntry> stale;  // entries that suppressed nothing
  int violations = 0;     // non-allowlisted findings + stale entries
  int files_scanned = 0;  // C++ files read and lexed
  double wall_ms = 0.0;   // scan + all rules, wall time
  std::string error;  // non-empty when the scan itself failed (exit 2)
};

LintReport run_lint(const LintOptions& options);

// Blank out //- and /**/-comments and string/char literal *contents* with
// spaces, preserving both byte offsets and line structure so rule positions
// computed on the stripped text index straight into the raw text.
std::string strip_comments_and_strings(std::string_view text);

// Dotted metric-key convention from DESIGN.md §8: two or more lowercase
// [a-z0-9_]+ tokens joined by single dots ("pool.width", "trace.pe.drnl").
bool is_dotted_metric_key(std::string_view name);

// Parse an allowlist file's text (see AllowlistEntry). Malformed lines are
// reported through `error` (one message, first offender wins).
std::vector<AllowlistEntry> parse_allowlist(std::string_view text, std::string* error);

// CLI driver for tools/cgps_lint:
//   cgps_lint <repo-root> [--allowlist FILE] [--json] [--bench-report FILE]
// Appends human-readable output to *out (or, with --json, one
// `cgps-lint-v1` JSONL record per finding plus a summary record).
// `--bench-report` additionally writes a minimal cgps-bench-v1 document
// with the lint wall time, for the CI bench-trend gate. Returns 0 when the
// tree is clean (allowlisted findings included), 1 on violations, 2 on bad
// usage or an unreadable root/allowlist.
int lint_main(int argc, const char* const* argv, std::string& out);

}  // namespace cgps::lint
