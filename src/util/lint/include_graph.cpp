#include "util/lint/include_graph.hpp"

#include "util/parallel.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace cgps::lint {

namespace {

// --- shared small helpers -------------------------------------------------

void add_finding(std::vector<Finding>& out, const FileUnit& f, int line,
                 std::string rule, std::string message) {
  Finding v;
  v.file = f.rel;
  v.line = line;
  v.rule = std::move(rule);
  v.message = std::move(message);
  if (line > 0) v.excerpt = line_text(f.raw, f.starts, line);
  out.push_back(std::move(v));
}

// Collapse "." and ".." components of a '/'-separated relative path.
std::string normalize_rel(std::string_view path) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    const std::string_view part =
        path.substr(pos, slash == std::string_view::npos ? std::string_view::npos
                                                         : slash - pos);
    if (part == "..") {
      if (!parts.empty()) parts.pop_back();
    } else if (!part.empty() && part != ".") {
      parts.emplace_back(part);
    }
    if (slash == std::string_view::npos) break;
    pos = slash + 1;
  }
  std::string out;
  for (const std::string& part : parts) {
    if (!out.empty()) out += '/';
    out += part;
  }
  return out;
}

std::string dir_of(std::string_view rel) {
  const std::size_t slash = rel.rfind('/');
  return slash == std::string_view::npos ? std::string() : std::string(rel.substr(0, slash));
}

std::string strip_ext(std::string_view rel) {
  const std::size_t dot = rel.rfind('.');
  const std::size_t slash = rel.rfind('/');
  if (dot == std::string_view::npos ||
      (slash != std::string_view::npos && dot < slash))
    return std::string(rel);
  return std::string(rel.substr(0, dot));
}

// Module a path belongs to: `src/<m>/...` -> m; otherwise the first
// component (tools, bench, examples, tests).
std::string module_of(std::string_view rel) {
  std::size_t start = 0;
  if (rel.rfind("src/", 0) == 0) start = 4;
  const std::size_t slash = rel.find('/', start);
  if (slash == std::string_view::npos) return std::string(rel.substr(start));
  return std::string(rel.substr(start, slash - start));
}

// --- include parsing ------------------------------------------------------

struct IncludeSite {
  std::string written;       // path as written inside the quotes/brackets
  bool angled = false;       // <...> (system) vs "..." (project)
  bool conditional = false;  // inside an #if/#ifdef/#ifndef region
  bool own = false;          // the .cpp's own header
  int line = 0;
  int target = -1;  // index into the scanned units; -1 = external
};

// Per-file derived data, computed in parallel before the serial passes.
struct FileInfo {
  std::vector<IncludeSite> includes;
  std::vector<std::string> symbols;          // headers only
  std::unordered_set<std::string> tokens;    // identifier tokens, include
                                             // directives excluded
};

// Parse `#include` directives from the stripped text (comments cannot fake
// a directive there), reading the path bytes back out of the raw text
// because the lexer blanks quoted-literal contents.
std::vector<IncludeSite> parse_includes(const FileUnit& f) {
  std::vector<IncludeSite> out;
  const std::string_view s = f.lexed.stripped;
  const std::string_view raw = f.raw;
  int depth = 0;
  for (std::size_t li = 0; li < f.starts.size(); ++li) {
    const std::size_t b = f.starts[li];
    const std::size_t e = s.find('\n', b);
    const std::string_view line =
        s.substr(b, e == std::string_view::npos ? std::string_view::npos : e - b);
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size() || line[i] != '#') continue;
    ++i;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    const std::string_view directive = line.substr(i);
    if (directive.rfind("if", 0) == 0) {  // if / ifdef / ifndef
      ++depth;
      continue;
    }
    if (directive.rfind("endif", 0) == 0) {
      if (depth > 0) --depth;
      continue;
    }
    if (directive.rfind("include", 0) != 0) continue;
    i += 7;  // "include"
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size() || (line[i] != '"' && line[i] != '<')) continue;
    const char close = line[i] == '"' ? '"' : '>';
    const std::size_t open = i + 1;
    const std::size_t end = line.find(close, open);
    if (end == std::string_view::npos) continue;
    IncludeSite site;
    site.angled = close == '>';
    // The lexer blanked the quoted path; read it from the raw bytes.
    site.written.assign(raw.substr(b + open, end - open));
    site.conditional = depth > 0;
    site.line = static_cast<int>(li + 1);
    out.push_back(std::move(site));
  }
  return out;
}

// --- exported-symbol extraction (unused-include) --------------------------

const std::unordered_set<std::string>& cpp_keywords() {
  static const std::unordered_set<std::string> kKeywords{
      "alignas", "alignof", "asm", "auto", "bool", "break", "case", "catch",
      "char", "char8_t", "char16_t", "char32_t", "class", "concept", "const",
      "consteval", "constexpr", "constinit", "const_cast", "continue",
      "co_await", "co_return", "co_yield", "decltype", "default", "delete",
      "do", "double", "dynamic_cast", "else", "enum", "explicit", "export",
      "extern", "false", "final", "float", "for", "friend", "goto", "if",
      "inline", "int", "long", "mutable", "namespace", "new", "noexcept",
      "noreturn", "nodiscard", "maybe_unused", "nullptr", "operator",
      "override", "private", "protected", "public", "register",
      "reinterpret_cast", "requires", "return", "short", "signed", "sizeof",
      "static", "static_assert", "static_cast", "struct", "switch",
      "template", "this", "thread_local", "throw", "true", "try", "typedef",
      "typeid", "typename", "union", "unsigned", "using", "virtual", "void",
      "volatile", "wchar_t", "while", "std", "size_t", "int8_t", "int16_t",
      "int32_t", "int64_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t"};
  return kKeywords;
}

bool is_exportable(const std::string& name) {
  return !name.empty() && cpp_keywords().count(name) == 0;
}

}  // namespace

// Top-level declared names of a header: types (class/struct/union/enum and
// their enumerators), namespace-scope functions, variables, and aliases,
// plus macro names. The walk tracks brace kinds so class members and
// function bodies stay out; over-approximating (a few extra names) is safe
// — it only makes "unused" harder to conclude — while missing a name could
// flag a live include, so collection leans generous.
std::vector<std::string> exported_symbols(const FileUnit& header) {
  const std::string_view s = header.lexed.stripped;
  std::set<std::string> out;

  // Brace kinds: 'n'amespace, 'r'ecord, 'e'num, 'o'ther (function bodies,
  // initializers). Declarations are collected only when every enclosing
  // brace is a namespace (or inside a record/enum for the *name* cases
  // handled via the keyword flag below).
  std::vector<char> braces;
  int paren = 0;
  bool after_record_kw = false;  // just saw class/struct/union/enum
  std::vector<std::string> stmt;  // tokens since last ; { } at paren 0
  std::string prev_ident;
  const auto at_namespace_level = [&] {
    for (const char b : braces)
      if (b != 'n') return false;
    return true;
  };
  const auto in_enum = [&] { return !braces.empty() && braces.back() == 'e'; };

  std::size_t i = 0;
  const std::size_t n = s.size();
  while (i < n) {
    const char c = s[i];
    if (c == '#') {
      // Preprocessor line: collect `#define NAME`, skip the rest.
      std::size_t j = skip_ws(s, i + 1);
      if (s.compare(j, 6, "define") == 0) {
        j = skip_ws(s, j + 6);
        std::string name;
        while (j < n && is_ident_char(s[j])) name += s[j++];
        if (is_exportable(name)) out.insert(name);
      }
      while (i < n && s[i] != '\n') ++i;
      continue;
    }
    if (is_ident_char(c) && !std::isdigit(static_cast<unsigned char>(c))) {
      std::string tok;
      while (i < n && is_ident_char(s[i])) tok += s[i++];
      if (after_record_kw && is_exportable(tok)) {
        out.insert(tok);
        after_record_kw = false;
      } else if (tok == "class" || tok == "struct" || tok == "union" ||
                 tok == "enum") {
        after_record_kw = true;
      }
      if (in_enum() && paren == 0 && is_exportable(tok)) out.insert(tok);
      prev_ident = std::move(tok);
      stmt.push_back(prev_ident);
      continue;
    }
    switch (c) {
      case '(':
        if (at_namespace_level() && paren == 0 && is_exportable(prev_ident))
          out.insert(prev_ident);
        ++paren;
        break;
      case ')':
        if (paren > 0) --paren;
        break;
      case '=':
      case ';':
      case ',':
      case '[':
        if (at_namespace_level() && paren == 0 && is_exportable(prev_ident))
          out.insert(prev_ident);
        if (c == ';') {
          stmt.clear();
          after_record_kw = false;
        }
        break;
      case '{': {
        char kind = 'o';
        if (paren == 0) {
          for (const std::string& t : stmt) {
            if (t == "namespace") kind = 'n';
          }
          if (kind == 'o') {
            for (const std::string& t : stmt) {
              if (t == "enum") kind = 'e';
              if (kind != 'e' && (t == "class" || t == "struct" || t == "union"))
                kind = 'r';
            }
          }
        }
        braces.push_back(kind);
        stmt.clear();
        after_record_kw = false;
        break;
      }
      case '}':
        if (!braces.empty()) braces.pop_back();
        stmt.clear();
        after_record_kw = false;
        break;
      default:
        break;
    }
    if (!std::isspace(static_cast<unsigned char>(c)) && c != '(') prev_ident.clear();
    if (c == '(') prev_ident.clear();
    ++i;
  }
  return std::vector<std::string>(out.begin(), out.end());
}

namespace {

// Identifier tokens of a file with include-directive lines excluded, the
// haystack the unused-include rule probes for a header's symbols.
std::unordered_set<std::string> usage_tokens(const FileUnit& f,
                                             const std::vector<IncludeSite>& includes) {
  std::unordered_set<std::string> out;
  std::vector<char> skip_line(f.starts.size(), 0);
  for (const IncludeSite& site : includes)
    skip_line[static_cast<std::size_t>(site.line - 1)] = 1;
  const std::string_view s = f.lexed.stripped;
  for (std::size_t li = 0; li < f.starts.size(); ++li) {
    if (skip_line[li] != 0) continue;
    const std::size_t b = f.starts[li];
    std::size_t e = s.find('\n', b);
    if (e == std::string_view::npos) e = s.size();
    std::size_t i = b;
    while (i < e) {
      if (is_ident_char(s[i]) && !std::isdigit(static_cast<unsigned char>(s[i]))) {
        std::string tok;
        while (i < e && is_ident_char(s[i])) tok += s[i++];
        out.insert(std::move(tok));
      } else {
        ++i;
      }
    }
  }
  return out;
}

// --- manifests ------------------------------------------------------------

struct LayeringRow {
  std::string from;
  std::string to;
  int line_no = 0;
  int uses = 0;
};

std::vector<LayeringRow> parse_layering(std::string_view text, std::string* error) {
  std::vector<LayeringRow> rows;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    ++line_no;
    const std::size_t eol = text.find('\n', pos);
    const std::string line = trim_copy(
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos));
    if (!line.empty() && line[0] != '#') {
      // `<from> -> <to>`
      const std::size_t arrow = line.find("->");
      LayeringRow row;
      row.line_no = line_no;
      if (arrow != std::string::npos) {
        row.from = trim_copy(line.substr(0, arrow));
        row.to = trim_copy(line.substr(arrow + 2));
      }
      if (row.from.empty() || row.to.empty() ||
          row.from.find(' ') != std::string::npos ||
          row.to.find(' ') != std::string::npos) {
        if (error != nullptr && error->empty())
          *error = "layering manifest line " + std::to_string(line_no) +
                   ": want `<module> -> <module>`";
      } else {
        rows.push_back(std::move(row));
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return rows;
}

struct AtomicsRow {
  std::string path;
  std::string order;
  std::string justification;
  int line_no = 0;
  int uses = 0;
};

std::vector<AtomicsRow> parse_atomics(std::string_view text, std::string* error) {
  std::vector<AtomicsRow> rows;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    ++line_no;
    const std::size_t eol = text.find('\n', pos);
    const std::string line = trim_copy(
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos));
    if (!line.empty() && line[0] != '#') {
      AtomicsRow row;
      row.line_no = line_no;
      const std::size_t sp1 = line.find_first_of(" \t");
      if (sp1 != std::string::npos) {
        row.path = line.substr(0, sp1);
        const std::size_t rest = line.find_first_not_of(" \t", sp1);
        const std::size_t sp2 =
            rest == std::string::npos ? std::string::npos : line.find_first_of(" \t", rest);
        if (rest != std::string::npos) {
          row.order = line.substr(
              rest, sp2 == std::string::npos ? std::string::npos : sp2 - rest);
          if (sp2 != std::string::npos)
            row.justification = trim_copy(line.substr(sp2));
        }
      }
      if (row.path.empty() || row.order.rfind("memory_order_", 0) != 0) {
        if (error != nullptr && error->empty())
          *error = "atomics manifest line " + std::to_string(line_no) +
                   ": want `<path> <memory_order_*> <justification>`";
      } else {
        rows.push_back(std::move(row));
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return rows;
}

// --- module-map cross-check -----------------------------------------------

// Table rows whose first cell is a backticked `src/<module>` path.
std::map<std::string, int> documented_modules(std::string_view doc) {
  std::map<std::string, int> out;
  int line = 0;
  std::size_t pos = 0;
  while (pos <= doc.size()) {
    ++line;
    const std::size_t eol = doc.find('\n', pos);
    const std::string text = trim_copy(doc.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos));
    if (text.size() > 3 && text[0] == '|') {
      const std::size_t tick = text.find('`');
      const std::size_t close =
          tick == std::string::npos ? std::string::npos : text.find('`', tick + 1);
      if (tick != std::string::npos && close != std::string::npos &&
          text.find_first_not_of("| ") == tick) {
        std::string name = text.substr(tick + 1, close - tick - 1);
        if (name.rfind("src/", 0) == 0) {
          name = name.substr(4);
          while (!name.empty() && name.back() == '/') name.pop_back();
          if (!name.empty() && name.find('/') == std::string::npos)
            out.emplace(name, line);
        }
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return out;
}

void check_module_map(const std::string& doc_rel, const std::string& doc_text,
                      const std::set<std::string>& actual_modules,
                      std::vector<Finding>& findings) {
  const std::map<std::string, int> documented = documented_modules(doc_text);
  if (documented.empty()) return;  // no module map in this document
  for (const std::string& mod : actual_modules) {
    if (documented.count(mod) != 0) continue;
    Finding v;
    v.file = doc_rel;
    v.line = 0;
    v.rule = "module-map-drift";
    v.message = "module map has no row for `src/" + mod +
                "`; every src/ module must be documented";
    findings.push_back(std::move(v));
  }
  for (const auto& [mod, line] : documented) {
    if (actual_modules.count(mod) != 0) continue;
    Finding v;
    v.file = doc_rel;
    v.line = line;
    v.rule = "module-map-drift";
    v.message = "module map documents `src/" + mod +
                "` but no such module exists; delete or rename the row";
    findings.push_back(std::move(v));
  }
}

// --- include-cycle detection (iterative Tarjan SCC) -----------------------

std::vector<std::vector<int>> strongly_connected(
    const std::vector<std::vector<int>>& adj) {
  const int n = static_cast<int>(adj.size());
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<char> on_stack(static_cast<std::size_t>(n), 0);
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int counter = 0;

  struct Frame {
    int v;
    std::size_t next_edge;
  };
  for (int start = 0; start < n; ++start) {
    if (index[static_cast<std::size_t>(start)] != -1) continue;
    std::vector<Frame> frames{{start, 0}};
    index[static_cast<std::size_t>(start)] =
        low[static_cast<std::size_t>(start)] = counter++;
    stack.push_back(start);
    on_stack[static_cast<std::size_t>(start)] = 1;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      const auto v = static_cast<std::size_t>(fr.v);
      if (fr.next_edge < adj[v].size()) {
        const int w = adj[v][fr.next_edge++];
        const auto wu = static_cast<std::size_t>(w);
        if (index[wu] == -1) {
          index[wu] = low[wu] = counter++;
          stack.push_back(w);
          on_stack[wu] = 1;
          frames.push_back({w, 0});
        } else if (on_stack[wu] != 0) {
          low[v] = std::min(low[v], index[wu]);
        }
      } else {
        if (low[v] == index[v]) {
          std::vector<int> scc;
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = 0;
            scc.push_back(w);
            if (w == fr.v) break;
          }
          sccs.push_back(std::move(scc));
        }
        const int child = fr.v;
        frames.pop_back();
        if (!frames.empty()) {
          const auto p = static_cast<std::size_t>(frames.back().v);
          low[p] = std::min(low[p], low[static_cast<std::size_t>(child)]);
        }
      }
    }
  }
  return sccs;
}

}  // namespace

DepsReport analyze_includes(const std::vector<FileUnit>& units,
                            const DepsOptions& options) {
  Stopwatch watch;
  DepsReport report;
  report.files_scanned = static_cast<int>(units.size());

  std::unordered_map<std::string, int> by_rel;
  for (std::size_t u = 0; u < units.size(); ++u)
    by_rel.emplace(units[u].rel, static_cast<int>(u));

  // Per-file extraction (includes, exported symbols, usage tokens) is pure
  // per file, so it parallelizes over the pool; every serial pass below
  // walks units in sorted order, keeping findings deterministic.
  std::vector<FileInfo> info(units.size());
  par::parallel_for(
      0, static_cast<std::int64_t>(units.size()), 1,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t idx = b; idx < e; ++idx) {
          const auto u = static_cast<std::size_t>(idx);
          const FileUnit& f = units[u];
          FileInfo& fi = info[u];
          fi.includes = parse_includes(f);
          const std::string own_stem = strip_ext(f.rel);
          for (IncludeSite& site : fi.includes) {
            if (site.angled) continue;
            // Resolve against the include root (src/) first, then relative
            // to the includer — mirroring the build's include paths.
            const std::string from_src = normalize_rel("src/" + site.written);
            const std::string from_here =
                normalize_rel(dir_of(f.rel) + "/" + site.written);
            auto it = by_rel.find(from_src);
            if (it == by_rel.end()) it = by_rel.find(from_here);
            if (it != by_rel.end()) site.target = it->second;
            if (site.target >= 0 && !f.is_header &&
                units[static_cast<std::size_t>(site.target)].is_header &&
                strip_ext(units[static_cast<std::size_t>(site.target)].rel) ==
                    own_stem)
              site.own = true;
          }
          if (f.is_header) fi.symbols = exported_symbols(f);
          fi.tokens = usage_tokens(f, fi.includes);
        }
      });

  // --- rule: include-order (+ duplicates) ---------------------------------
  for (std::size_t u = 0; u < units.size(); ++u) {
    const FileUnit& f = units[u];
    int max_cat = -1;
    const IncludeSite* prev = nullptr;
    int prev_cat = -1;
    std::map<std::string, int> seen;  // written path -> first line
    for (const IncludeSite& site : info[u].includes) {
      if (site.conditional) {
        prev = nullptr;
        continue;
      }
      const auto [it, fresh] = seen.emplace(site.written, site.line);
      if (!fresh) {
        add_finding(report.findings, f, site.line, "include-order",
                    "duplicate include of \"" + site.written +
                        "\" (first included on line " + std::to_string(it->second) +
                        ")");
        prev = &site;
        continue;
      }
      const int cat = site.own ? 0 : (site.angled ? 2 : 1);
      if (cat < max_cat) {
        const char* kind = site.own ? "the file's own header"
                                    : (site.angled ? "a system include"
                                                   : "a project include");
        add_finding(report.findings, f, site.line, "include-order",
                    std::string(kind) +
                        " appears after a later block; convention is own "
                        "header, then project headers, then system headers "
                        "(DESIGN.md §9)");
      } else if (prev != nullptr && cat == prev_cat && site.line == prev->line + 1 &&
                 site.written < prev->written) {
        add_finding(report.findings, f, site.line, "include-order",
                    "\"" + site.written + "\" sorts before \"" + prev->written +
                        "\"; keep each include block lexicographically sorted");
      }
      max_cat = std::max(max_cat, cat);
      prev = &site;
      prev_cat = cat;
    }
  }

  // --- rule: include-cycle ------------------------------------------------
  std::vector<std::vector<int>> adj(units.size());
  for (std::size_t u = 0; u < units.size(); ++u) {
    for (const IncludeSite& site : info[u].includes)
      if (site.target >= 0) adj[u].push_back(site.target);
  }
  for (const std::vector<int>& scc : strongly_connected(adj)) {
    const bool self_loop =
        scc.size() == 1 &&
        std::count(adj[static_cast<std::size_t>(scc[0])].begin(),
                   adj[static_cast<std::size_t>(scc[0])].end(), scc[0]) > 0;
    if (scc.size() < 2 && !self_loop) continue;
    std::vector<int> members(scc);
    std::sort(members.begin(), members.end());
    std::string cycle;
    for (const int m : members) {
      if (!cycle.empty()) cycle += " -> ";
      cycle += units[static_cast<std::size_t>(m)].rel;
    }
    cycle += " -> " + units[static_cast<std::size_t>(members[0])].rel;
    const std::set<int> in_scc(members.begin(), members.end());
    for (const int m : members) {
      const auto mu = static_cast<std::size_t>(m);
      int line = 0;
      for (const IncludeSite& site : info[mu].includes) {
        if (site.target >= 0 && in_scc.count(site.target) != 0 &&
            (site.target != m || self_loop)) {
          line = site.line;
          break;
        }
      }
      add_finding(report.findings, units[mu], line, "include-cycle",
                  "header include cycle: " + cycle +
                      "; break it with a forward declaration or by moving "
                      "the shared type down a layer");
    }
  }

  // --- rule: unused-include (IWYU-lite) -----------------------------------
  for (std::size_t u = 0; u < units.size(); ++u) {
    const FileUnit& f = units[u];
    for (const IncludeSite& site : info[u].includes) {
      if (site.target < 0 || site.own || site.conditional) continue;
      const auto t = static_cast<std::size_t>(site.target);
      if (t == u || !units[t].is_header) continue;
      const std::vector<std::string>& symbols = info[t].symbols;
      if (symbols.empty()) continue;  // opaque header: nothing to check
      bool used = false;
      for (const std::string& symbol : symbols) {
        if (info[u].tokens.count(symbol) != 0) {
          used = true;
          break;
        }
      }
      if (!used)
        add_finding(report.findings, f, site.line, "unused-include",
                    "none of the " + std::to_string(symbols.size()) +
                        " top-level symbols of \"" + site.written +
                        "\" appear in this file; drop the include (or "
                        "include what you use instead)");
    }
  }

  // --- rules: layering-violation / layering-manifest-stale ----------------
  std::map<std::pair<std::string, std::string>, std::pair<std::string, int>> edges;
  for (std::size_t u = 0; u < units.size(); ++u) {
    const FileUnit& f = units[u];
    if (f.rel.rfind("src/", 0) != 0) continue;
    const std::string from = module_of(f.rel);
    for (const IncludeSite& site : info[u].includes) {
      if (site.target < 0) continue;
      const std::string& target_rel = units[static_cast<std::size_t>(site.target)].rel;
      if (target_rel.rfind("src/", 0) != 0) continue;
      const std::string to = module_of(target_rel);
      if (to == from) continue;
      edges.emplace(std::make_pair(from, to), std::make_pair(f.rel, site.line));
    }
  }
  for (const auto& [edge, site] : edges) {
    ModuleEdge e;
    e.from = edge.first;
    e.to = edge.second;
    e.example_file = site.first;
    e.example_line = site.second;
    report.edges.push_back(std::move(e));
  }

  const std::string layering_path = options.layering_path.empty()
                                        ? options.root + "/tools/cgps_layering.txt"
                                        : options.layering_path;
  std::string layering_text;
  if (read_file(layering_path, layering_text)) {
    std::vector<LayeringRow> rows = parse_layering(layering_text, &report.error);
    if (!report.error.empty()) return report;
    for (const ModuleEdge& e : report.edges) {
      bool allowed = false;
      for (LayeringRow& row : rows) {
        if (row.from == e.from && row.to == e.to) {
          ++row.uses;
          allowed = true;
          break;
        }
      }
      if (!allowed) {
        Finding v;
        v.file = e.example_file;
        v.line = e.example_line;
        v.rule = "layering-violation";
        v.message = "module edge `" + e.from + " -> " + e.to +
                     "` is not declared in tools/cgps_layering.txt; refactor "
                     "the dependency or (for a genuinely new layer edge) add "
                     "the manifest row in the same reviewed change";
        const auto it = by_rel.find(e.example_file);
        if (it != by_rel.end()) {
          const FileUnit& f = units[static_cast<std::size_t>(it->second)];
          v.excerpt = line_text(f.raw, f.starts, e.example_line);
        }
        report.findings.push_back(std::move(v));
      }
    }
    for (const LayeringRow& row : rows) {
      if (row.uses > 0) continue;
      Finding v;
      v.file = "tools/cgps_layering.txt";
      v.line = row.line_no;
      v.rule = "layering-manifest-stale";
      v.message = "edge `" + row.from + " -> " + row.to +
                   "` is declared but no include realizes it; the manifest "
                   "is shrink-only — delete the row";
      report.findings.push_back(std::move(v));
    }
  }

  // --- rules: atomics manifest + volatile ---------------------------------
  const std::string atomics_path = options.atomics_path.empty()
                                       ? options.root + "/tools/cgps_atomics.txt"
                                       : options.atomics_path;
  std::string atomics_text;
  const bool have_atomics = read_file(atomics_path, atomics_text);
  std::vector<AtomicsRow> atomics_rows;
  if (have_atomics) {
    atomics_rows = parse_atomics(atomics_text, &report.error);
    if (!report.error.empty()) return report;
  }
  static constexpr const char* kWeakOrders[] = {
      "memory_order_relaxed", "memory_order_acquire", "memory_order_release",
      "memory_order_acq_rel"};
  for (std::size_t u = 0; u < units.size(); ++u) {
    const FileUnit& f = units[u];
    if (f.is_test) continue;
    const std::string_view s = f.lexed.stripped;
    if (have_atomics) {
      for (const char* order : kWeakOrders) {
        for (const std::size_t pos : token_offsets(s, order)) {
          bool listed = false;
          for (AtomicsRow& row : atomics_rows) {
            if (row.path == f.rel && row.order == order) {
              ++row.uses;
              listed = true;
              break;
            }
          }
          if (!listed)
            add_finding(report.findings, f, line_of(f.starts, pos),
                        "atomic-order-unmanifested",
                        std::string(order) + " in " + f.rel +
                            " has no reviewed row in tools/cgps_atomics.txt; "
                            "weaker-than-seq_cst orders need a one-line "
                            "justification (DESIGN.md §9)");
        }
      }
      // `std::memory_order::relaxed` spelling would slip past the scanner.
      for (const std::size_t pos : token_offsets(s, "memory_order")) {
        const std::size_t after = skip_ws(s, pos + 12);
        if (after + 1 < s.size() && s[after] == ':' && s[after + 1] == ':')
          add_finding(report.findings, f, line_of(f.starts, pos),
                      "atomic-order-unmanifested",
                      "use the memory_order_* spelling; the scoped "
                      "memory_order:: form hides the site from the "
                      "tools/cgps_atomics.txt scanner");
      }
    }
    if (f.rel != "src/exec/quant.hpp") {
      for (const std::size_t pos : token_offsets(s, "volatile"))
        add_finding(report.findings, f, line_of(f.starts, pos), "volatile-banned",
                    "`volatile` is not a concurrency tool; use std::atomic "
                    "(the only sanctioned volatile is q8_combine's "
                    "contraction barrier in src/exec/quant.hpp)");
    }
  }
  if (have_atomics) {
    for (const AtomicsRow& row : atomics_rows) {
      if (row.justification.empty()) {
        Finding v;
        v.file = "tools/cgps_atomics.txt";
        v.line = row.line_no;
        v.rule = "atomics-manifest-unjustified";
        v.message = "row `" + row.path + " " + row.order +
                     "` carries no justification; every manifest entry must "
                     "say why the weaker order is sound";
        report.findings.push_back(std::move(v));
      }
      if (row.uses == 0) {
        Finding v;
        v.file = "tools/cgps_atomics.txt";
        v.line = row.line_no;
        v.rule = "atomics-manifest-stale";
        v.message = "row `" + row.path + " " + row.order +
                     "` matches no site; the manifest is shrink-only — "
                     "delete the row";
        report.findings.push_back(std::move(v));
      }
    }
  }

  // --- rule: module-map-drift ---------------------------------------------
  std::set<std::string> actual_modules;
  for (const FileUnit& f : units)
    if (f.rel.rfind("src/", 0) == 0) actual_modules.insert(module_of(f.rel));
  for (const char* doc : {"README.md", "docs/OPERATIONS.md"}) {
    std::string text;
    if (read_file(options.root + "/" + doc, text))
      check_module_map(doc, text, actual_modules, report.findings);
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  report.wall_ms = watch.milliseconds();
  return report;
}

DepsReport run_deps(const DepsOptions& options) {
  Stopwatch watch;
  std::string error;
  std::vector<FileUnit> units = scan_tree(options.root, &error);
  if (!error.empty()) {
    DepsReport report;
    report.error = error;
    return report;
  }
  if (units.empty()) {
    DepsReport report;
    report.error = "no sources found under " + options.root;
    return report;
  }
  DepsReport report = analyze_includes(units, options);
  report.wall_ms = watch.milliseconds();
  return report;
}

std::string render_dot(const std::vector<ModuleEdge>& edges) {
  std::set<std::string> nodes;
  std::set<std::pair<std::string, std::string>> arcs;
  for (const ModuleEdge& e : edges) {
    nodes.insert(e.from);
    nodes.insert(e.to);
    arcs.emplace(e.from, e.to);
  }
  std::string out = "digraph cgps_modules {\n";
  out += "  // generated by `cgps_deps --dot` (DESIGN.md §9)\n";
  out += "  rankdir=BT;\n";
  out += "  node [shape=box, fontsize=11];\n";
  for (const std::string& node : nodes) out += "  \"" + node + "\";\n";
  for (const auto& [from, to] : arcs)
    out += "  \"" + from + "\" -> \"" + to + "\";\n";
  out += "}\n";
  return out;
}

int deps_main(int argc, const char* const* argv, std::string& out) {
  std::string root;
  std::string layering;
  std::string atomics;
  bool dot = false;
  bool usage_error = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--dot") {
      dot = true;
    } else if (arg == "--check") {
      dot = false;
    } else if (arg == "--layering" && i + 1 < argc) {
      layering = argv[++i];
    } else if (arg == "--atomics" && i + 1 < argc) {
      atomics = argv[++i];
    } else if (!arg.empty() && arg[0] != '-' && root.empty()) {
      root = arg;
    } else {
      usage_error = true;
    }
  }
  if (root.empty() || usage_error) {
    out +=
        "usage: cgps_deps <repo-root> [--check] [--dot] [--layering FILE] "
        "[--atomics FILE]\n";
    return 2;
  }

  const DepsReport report = run_deps({root, layering, atomics});
  if (!report.error.empty()) {
    out += "cgps_deps: " + report.error + "\n";
    return 2;
  }
  if (dot) {
    out += render_dot(report.edges);
    return 0;
  }
  for (const Finding& v : report.findings) {
    out += v.file + ":" + std::to_string(v.line) + " " + v.rule + " " +
           v.message + "\n";
    if (!v.excerpt.empty()) out += "    > " + v.excerpt + "\n";
  }
  char wall[64];
  std::snprintf(wall, sizeof(wall), "%.1f", report.wall_ms);
  out += "cgps_deps: " + std::to_string(report.findings.size()) +
         " violation(s) over " + std::to_string(report.files_scanned) +
         " files in " + wall + " ms\n";
  return report.findings.empty() ? 0 : 1;
}

}  // namespace cgps::lint
