#include "util/lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

namespace cgps::lint {

namespace {

namespace fs = std::filesystem;

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// One string/char literal found by the lexer. `start` is the opening quote's
// byte offset in the file, `end` the closing quote's; `value` is the raw
// content between them (escapes unprocessed — the rules only substring-match).
struct Literal {
  std::size_t start = 0;
  std::size_t end = 0;
  int line = 0;
  std::string value;
};

struct LexResult {
  std::string stripped;
  std::vector<Literal> literals;
};

// Single pass that blanks comment and literal contents (offset-preserving)
// while collecting the literals. Quotes themselves survive in the stripped
// text so call-shape checks can still see where a literal argument starts.
LexResult lex(std::string_view text) {
  LexResult r;
  r.stripped.assign(text.begin(), text.end());
  std::string& s = r.stripped;
  const std::size_t n = text.size();
  int line = 1;
  std::size_t i = 0;
  const auto blank = [&](std::size_t j) {
    if (s[j] != '\n') s[j] = ' ';
  };
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') blank(i++);
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      blank(i);
      blank(i + 1);
      i += 2;
      while (i < n && !(text[i] == '*' && i + 1 < n && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        blank(i++);
      }
      if (i < n) {
        blank(i);
        blank(i + 1);
        i += 2;
      }
    } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
               (i == 0 || !is_ident(text[i - 1]))) {
      // Raw string literal R"delim( ... )delim".
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && text[p] != '(' && text[p] != '\n') delim += text[p++];
      const std::string close = ")" + delim + "\"";
      const std::size_t body = p < n ? p + 1 : n;
      std::size_t end = text.find(close, body);
      if (end == std::string_view::npos) end = n;
      Literal lit;
      lit.start = i + 1;  // the opening quote
      lit.line = line;
      lit.value.assign(text.substr(body, end - body));
      const std::size_t stop = std::min(end + close.size(), n);
      lit.end = stop > 0 ? stop - 1 : 0;
      for (std::size_t j = i + 2; j < std::min(end + close.size() - 1, n); ++j) {
        if (text[j] == '\n')
          ++line;
        else
          blank(j);
      }
      r.literals.push_back(std::move(lit));
      i = stop;
    } else if (c == '"' || (c == '\'' && (i == 0 || !is_ident(text[i - 1])))) {
      const char quote = c;
      Literal lit;
      lit.start = i;
      lit.line = line;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote && text[j] != '\n') {
        if (text[j] == '\\' && j + 1 < n && text[j + 1] != '\n') {
          lit.value += text[j];
          lit.value += text[j + 1];
          blank(j);
          blank(j + 1);
          j += 2;
        } else {
          lit.value += text[j];
          blank(j++);
        }
      }
      lit.end = j < n ? j : n - 1;
      if (quote == '"') r.literals.push_back(std::move(lit));
      i = j < n ? j + 1 : n;
    } else {
      ++i;
    }
  }
  return r;
}

std::string trim_copy(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

// Byte offset -> 1-based line number lookup table.
std::vector<std::size_t> line_starts(std::string_view text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i)
    if (text[i] == '\n') starts.push_back(i + 1);
  return starts;
}

int line_of(const std::vector<std::size_t>& starts, std::size_t offset) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), offset);
  return static_cast<int>(it - starts.begin());
}

std::string line_text(std::string_view text, const std::vector<std::size_t>& starts,
                      int line) {
  const std::size_t b = starts[static_cast<std::size_t>(line - 1)];
  const std::size_t e = text.find('\n', b);
  return trim_copy(text.substr(b, e == std::string_view::npos ? e : e - b));
}

// Offsets of `token` in `text` with identifier boundaries on both sides.
std::vector<std::size_t> token_offsets(std::string_view text, std::string_view token) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
    const std::size_t after = pos + token.size();
    const bool right_ok = after >= text.size() || !is_ident(text[after]);
    if (left_ok && right_ok) out.push_back(pos);
    pos = after;
  }
  return out;
}

std::size_t skip_ws(std::string_view text, std::size_t i) {
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])))
    ++i;
  return i;
}

struct FileUnit {
  std::string rel;       // path relative to the root, '/'-separated
  std::string raw;
  LexResult lexed;
  std::vector<std::size_t> starts;
  bool is_header = false;
  bool is_test = false;
};

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

void add_finding(std::vector<Finding>& out, const FileUnit& f, int line,
                 std::string rule, std::string message) {
  Finding v;
  v.file = f.rel;
  v.line = line;
  v.rule = std::move(rule);
  v.message = std::move(message);
  if (line > 0) v.excerpt = line_text(f.raw, f.starts, line);
  out.push_back(std::move(v));
}

// --- rule: getenv-outside-env -------------------------------------------
void check_getenv(const FileUnit& f, std::vector<Finding>& out) {
  if (f.rel == "src/util/env.cpp") return;
  for (const std::size_t pos : token_offsets(f.lexed.stripped, "getenv")) {
    add_finding(out, f, line_of(f.starts, pos), "getenv-outside-env",
                "environment access must go through util/env (strict parsing, "
                "warn-once); src/util/env.cpp is the only allowed getenv site");
  }
}

// --- rule: naked-new ----------------------------------------------------
void check_naked_new(const FileUnit& f, std::vector<Finding>& out) {
  if (f.is_test) return;
  const std::string_view s = f.lexed.stripped;
  for (const std::size_t pos : token_offsets(s, "new")) {
    const std::size_t next = skip_ws(s, pos + 3);
    if (next >= s.size() || (!is_ident(s[next]) && s[next] != '(')) continue;
    add_finding(out, f, line_of(f.starts, pos), "naked-new",
                "owning allocations use std::make_unique/containers; naked new "
                "needs an allowlist justification");
  }
  for (const std::size_t pos : token_offsets(s, "delete")) {
    // `= delete` (deleted functions) is not a deallocation.
    std::size_t prev = pos;
    while (prev > 0 && std::isspace(static_cast<unsigned char>(s[prev - 1]))) --prev;
    if (prev > 0 && s[prev - 1] == '=') continue;
    add_finding(out, f, line_of(f.starts, pos), "naked-new",
                "manual delete is banned in non-test code; use RAII owners");
  }
}

// --- rule: exec-kernel-alloc ----------------------------------------------
// Kernel backend TUs (src/exec/backend_*.cpp) execute inside the plan
// executor's hot path: every buffer they touch was carved from the arena at
// bind time, so the whole TU must stay allocation-free — no heap calls and
// no owning containers (DESIGN.md §10). `new`/`delete` are already covered
// by naked-new; this rule catches the indirect allocators.
void check_exec_alloc(const FileUnit& f, std::vector<Finding>& out) {
  if (f.rel.rfind("src/exec/backend_", 0) != 0) return;
  for (const std::string_view token :
       {std::string_view("malloc"), std::string_view("calloc"), std::string_view("realloc"),
        std::string_view("free"), std::string_view("push_back"),
        std::string_view("emplace_back"), std::string_view("resize"),
        std::string_view("reserve"), std::string_view("make_unique"),
        std::string_view("make_shared"), std::string_view("vector"),
        std::string_view("string"), std::string_view("deque"), std::string_view("map"),
        std::string_view("unordered_map")}) {
    for (const std::size_t pos : token_offsets(f.lexed.stripped, token)) {
      add_finding(out, f, line_of(f.starts, pos), "exec-kernel-alloc",
                  "kernel backends are arena-only: `" + std::string(token) +
                      "` allocates or owns storage on the executor hot path "
                      "(kernels take caller-carved pointers)");
    }
  }
}

// --- rule: no-cout-outside-tools ------------------------------------------
// Library code (src/) must not write to stdout: user-facing text belongs to
// the CLIs (tools/, bench/, examples/) and diagnostics go through
// util/logging, which writes to stderr. A stray std::cout in a library TU
// corrupts machine-read stdout (bench JSON captures, piped tool output).
// Only the qualified name is flagged — a local identifier `cout` is legal.
void check_cout(const FileUnit& f, std::vector<Finding>& out) {
  if (f.rel.rfind("src/", 0) != 0) return;
  const std::string_view s = f.lexed.stripped;
  for (const std::size_t pos : token_offsets(s, "cout")) {
    std::size_t p = pos;
    while (p > 0 && std::isspace(static_cast<unsigned char>(s[p - 1]))) --p;
    if (p < 2 || s[p - 1] != ':' || s[p - 2] != ':') continue;
    p -= 2;
    while (p > 0 && std::isspace(static_cast<unsigned char>(s[p - 1]))) --p;
    if (p < 3 || s.compare(p - 3, 3, "std") != 0) continue;
    if (p > 3 && is_ident(s[p - 4])) continue;
    add_finding(out, f, line_of(f.starts, pos), "no-cout-outside-tools",
                "library code must not write to stdout; use util/logging "
                "(stderr) or move the print into a tools//bench CLI");
  }
}

// --- rule: header hygiene -----------------------------------------------
void check_headers(const FileUnit& f, std::vector<Finding>& out) {
  if (!f.is_header) return;
  if (f.raw.find("#pragma once") == std::string::npos)
    add_finding(out, f, 0, "header-pragma-once", "header is missing #pragma once");
  std::size_t pos = 0;
  const std::string_view s = f.lexed.stripped;
  while ((pos = s.find("using namespace", pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident(s[pos - 1]);
    if (left_ok)
      add_finding(out, f, line_of(f.starts, pos), "header-using-namespace",
                  "`using namespace` in a header leaks into every includer");
    pos += 15;
  }
}

// --- rules: metric-key-format / metric-key-registry ---------------------
// Shared extraction: every literal name handed to the metrics registry or
// TraceSpan as the whole first argument. Computed names (any non-literal
// first argument, or a literal spliced with +) are skipped — the histogram
// registry prefixes "trace." itself and per-layer span names are built at
// runtime.
template <typename Fn>
void for_each_instrument_literal(const FileUnit& f, Fn&& fn) {
  const std::string_view s = f.lexed.stripped;
  const auto literal_at = [&](std::size_t offset) -> const Literal* {
    for (const Literal& lit : f.lexed.literals)
      if (lit.start == offset) return &lit;
    return nullptr;
  };
  for (const std::string_view token :
       {std::string_view("metric_counter"), std::string_view("metric_gauge"),
        std::string_view("metric_histogram"), std::string_view("TraceSpan")}) {
    for (const std::size_t pos : token_offsets(s, token)) {
      std::size_t i = skip_ws(s, pos + token.size());
      // Allow one identifier between the type and the paren: `TraceSpan span(`.
      if (i < s.size() && is_ident(s[i])) {
        while (i < s.size() && is_ident(s[i])) ++i;
        i = skip_ws(s, i);
      }
      if (i >= s.size() || s[i] != '(') continue;
      i = skip_ws(s, i + 1);
      const Literal* lit = i < s.size() && s[i] == '"' ? literal_at(i) : nullptr;
      if (lit == nullptr) continue;
      const std::size_t after = skip_ws(s, lit->end + 1);
      if (after < s.size() && s[after] != ',' && s[after] != ')') continue;
      fn(*lit);
    }
  }
}

void check_metric_keys(const FileUnit& f, std::vector<Finding>& out) {
  for_each_instrument_literal(f, [&](const Literal& lit) {
    if (!is_dotted_metric_key(lit.value))
      add_finding(out, f, lit.line, "metric-key-format",
                  "instrument name \"" + lit.value +
                      "\" must be a dotted lowercase key like "
                      "\"sampling.extract\" (DESIGN.md §8)");
  });
}

// First code location that referenced a name, for cross-check findings.
struct SourceRef {
  std::string file;
  int line = 0;
};

void collect_metric_keys(const FileUnit& f, std::map<std::string, SourceRef>& refs) {
  for_each_instrument_literal(f, [&](const Literal& lit) {
    refs.emplace(lit.value, SourceRef{f.rel, lit.line});
  });
}

// Manifest rows: one key per line, `#` comments and blank lines skipped.
std::map<std::string, int> parse_key_manifest(std::string_view text) {
  std::map<std::string, int> out;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    ++line_no;
    const std::size_t eol = text.find('\n', pos);
    const std::string line = trim_copy(
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos));
    if (!line.empty() && line[0] != '#') out.emplace(line, line_no);
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return out;
}

// --- rule: env-var table cross-check ------------------------------------
void collect_env_refs(const FileUnit& f, std::map<std::string, SourceRef>& refs) {
  for (const Literal& lit : f.lexed.literals) {
    const std::string_view v = lit.value;
    for (const std::string_view prefix :
         {std::string_view("CIRCUITGPS_"), std::string_view("CGPS_")}) {
      std::size_t pos = 0;
      while ((pos = v.find(prefix, pos)) != std::string_view::npos) {
        const bool left_ok = pos == 0 || !(std::isupper(static_cast<unsigned char>(
                                               v[pos - 1])) ||
                                           v[pos - 1] == '_' ||
                                           std::isdigit(static_cast<unsigned char>(
                                               v[pos - 1])));
        std::size_t end = pos + prefix.size();
        while (end < v.size() &&
               (std::isupper(static_cast<unsigned char>(v[end])) ||
                std::isdigit(static_cast<unsigned char>(v[end])) || v[end] == '_'))
          ++end;
        if (left_ok && end > pos + prefix.size()) {
          std::string name(v.substr(pos, end - pos));
          while (!name.empty() && name.back() == '_') name.pop_back();
          refs.emplace(std::move(name), SourceRef{f.rel, lit.line});
        }
        pos = end;
      }
    }
  }
}

// Table rows look like `| \`NAME\` | default | meaning |`; only rows whose
// name carries an env prefix participate in the cross-check.
std::map<std::string, int> documented_env_vars(std::string_view readme) {
  std::map<std::string, int> out;
  int line = 0;
  std::size_t pos = 0;
  while (pos <= readme.size()) {
    ++line;
    const std::size_t eol = readme.find('\n', pos);
    std::string_view row = readme.substr(pos, eol == std::string_view::npos
                                                  ? std::string_view::npos
                                                  : eol - pos);
    const std::string text = trim_copy(row);
    if (text.size() > 3 && text[0] == '|') {
      const std::size_t tick = text.find('`');
      const std::size_t close = tick == std::string::npos
                                    ? std::string::npos
                                    : text.find('`', tick + 1);
      if (tick != std::string::npos && close != std::string::npos &&
          text.find_first_not_of("| ") == tick) {
        const std::string name = text.substr(tick + 1, close - tick - 1);
        if (name.rfind("CIRCUITGPS_", 0) == 0 || name.rfind("CGPS_", 0) == 0)
          out.emplace(name, line);
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return out;
}

}  // namespace

bool is_dotted_metric_key(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool saw_dot = false;
  char prev = '.';
  for (const char c : name) {
    if (c == '.') {
      if (prev == '.') return false;
      saw_dot = true;
    } else if (!(std::islower(static_cast<unsigned char>(c)) ||
                 std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
    prev = c;
  }
  return saw_dot;
}

std::string strip_comments_and_strings(std::string_view text) {
  return lex(text).stripped;
}

std::vector<AllowlistEntry> parse_allowlist(std::string_view text, std::string* error) {
  std::vector<AllowlistEntry> out;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    ++line_no;
    const std::size_t eol = text.find('\n', pos);
    const std::string line = trim_copy(
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos));
    if (!line.empty() && line[0] != '#') {
      std::istringstream ss(line);
      AllowlistEntry entry;
      entry.line_no = line_no;
      ss >> entry.rule >> entry.path_suffix;
      if (entry.path_suffix.empty()) {
        if (error != nullptr && error->empty())
          *error = "allowlist line " + std::to_string(line_no) +
                   ": want `<rule> <path-suffix> [line substring]`";
      } else {
        std::string rest;
        std::getline(ss, rest);
        entry.needle = trim_copy(rest);
        out.push_back(std::move(entry));
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return out;
}

LintReport run_lint(const LintOptions& options) {
  LintReport report;
  const fs::path root(options.root);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    report.error = "not a directory: " + options.root;
    return report;
  }

  std::vector<AllowlistEntry> allow;
  if (!options.allowlist_path.empty()) {
    std::string text;
    if (!read_file(options.allowlist_path, text)) {
      report.error = "cannot read allowlist: " + options.allowlist_path;
      return report;
    }
    allow = parse_allowlist(text, &report.error);
    if (!report.error.empty()) return report;
  }

  // Deterministic file order: collect, then sort by relative path.
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tools", "bench", "examples", "tests"}) {
    const fs::path sub = root / dir;
    if (!fs::is_directory(sub, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(sub, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h")
        files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());

  std::map<std::string, SourceRef> env_refs;
  std::map<std::string, SourceRef> metric_refs;
  for (const fs::path& path : files) {
    FileUnit f;
    f.rel = fs::relative(path, root, ec).generic_string();
    if (ec) f.rel = path.generic_string();
    if (!read_file(path, f.raw)) {
      report.error = "cannot read " + f.rel;
      return report;
    }
    f.lexed = lex(f.raw);
    f.starts = line_starts(f.raw);
    const std::string ext = path.extension().string();
    f.is_header = ext == ".hpp" || ext == ".h";
    f.is_test = f.rel.rfind("tests/", 0) == 0;

    check_getenv(f, report.findings);
    check_naked_new(f, report.findings);
    check_exec_alloc(f, report.findings);
    check_cout(f, report.findings);
    check_headers(f, report.findings);
    check_metric_keys(f, report.findings);
    // Tests are exempt: their literals name hypothetical variables and
    // throwaway instruments (the lint fixtures themselves, strict-parsing
    // probes) that would pollute the cross-checks both ways.
    if (!f.is_test) {
      collect_env_refs(f, env_refs);
      collect_metric_keys(f, metric_refs);
    }
  }

  // --- rule: metric-key-registry ----------------------------------------
  // When tools/cgps_metric_keys.txt exists, every literal instrument/span
  // name in non-test code must appear in it (and every manifest row must be
  // registered somewhere), so the stats payload schema cannot drift without
  // a reviewed manifest diff. Absent manifest = rule off (fixture trees).
  std::string manifest_text;
  if (read_file(root / "tools" / "cgps_metric_keys.txt", manifest_text)) {
    const std::map<std::string, int> manifest = parse_key_manifest(manifest_text);
    for (const auto& [name, ref] : metric_refs) {
      if (manifest.count(name) != 0) continue;
      Finding v;
      v.file = ref.file;
      v.line = ref.line;
      v.rule = "metric-key-registry";
      v.message = "instrument name \"" + name + "\" is registered in code but "
                  "missing from tools/cgps_metric_keys.txt; add a row (the "
                  "manifest is the reviewed schema of the stats payload)";
      report.findings.push_back(std::move(v));
    }
    for (const auto& [name, line] : manifest) {
      if (metric_refs.count(name) != 0) continue;
      Finding v;
      v.file = "tools/cgps_metric_keys.txt";
      v.line = line;
      v.rule = "metric-key-registry";
      v.message = "\"" + name + "\" is listed in the key manifest but no "
                  "non-test code registers it; delete the row";
      report.findings.push_back(std::move(v));
    }
  }

  std::string readme;
  read_file(root / "README.md", readme);  // missing file = empty table
  const std::map<std::string, int> documented = documented_env_vars(readme);
  for (const auto& [name, ref] : env_refs) {
    if (documented.count(name) != 0) continue;
    Finding v;
    v.file = ref.file;
    v.line = ref.line;
    v.rule = "env-var-undocumented";
    v.message = name + " is read in code but missing from the README.md "
                       "environment-variable table";
    report.findings.push_back(std::move(v));
  }
  for (const auto& [name, line] : documented) {
    if (env_refs.count(name) != 0) continue;
    Finding v;
    v.file = "README.md";
    v.line = line;
    v.rule = "env-var-unreferenced";
    v.message = name + " is documented in the README.md table but no code "
                       "references it";
    report.findings.push_back(std::move(v));
  }

  // The operator guide, when present, must stay in lockstep with the code
  // the same way the README table does: its env-var table is the contract
  // operators configure daemons from, so a missing or dead row is a bug.
  std::string ops;
  if (read_file(root / "docs" / "OPERATIONS.md", ops)) {
    const std::map<std::string, int> ops_documented = documented_env_vars(ops);
    for (const auto& [name, ref] : env_refs) {
      if (ops_documented.count(name) != 0) continue;
      Finding v;
      v.file = ref.file;
      v.line = ref.line;
      v.rule = "env-var-undocumented";
      v.message = name + " is read in code but missing from the "
                         "docs/OPERATIONS.md environment-variable table";
      report.findings.push_back(std::move(v));
    }
    for (const auto& [name, line] : ops_documented) {
      if (env_refs.count(name) != 0) continue;
      Finding v;
      v.file = "docs/OPERATIONS.md";
      v.line = line;
      v.rule = "env-var-unreferenced";
      v.message = name + " is documented in the docs/OPERATIONS.md table but "
                         "no code references it";
      report.findings.push_back(std::move(v));
    }
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
            });

  for (Finding& v : report.findings) {
    for (AllowlistEntry& entry : allow) {
      if (entry.rule != v.rule) continue;
      if (v.file.size() < entry.path_suffix.size() ||
          v.file.compare(v.file.size() - entry.path_suffix.size(),
                         entry.path_suffix.size(), entry.path_suffix) != 0)
        continue;
      if (!entry.needle.empty() && v.excerpt.find(entry.needle) == std::string::npos &&
          v.message.find(entry.needle) == std::string::npos)
        continue;
      v.allowlisted = true;
      ++entry.uses;
      break;
    }
    if (!v.allowlisted) ++report.violations;
  }
  for (const AllowlistEntry& entry : allow) {
    if (entry.uses == 0) {
      report.stale.push_back(entry);
      ++report.violations;
    }
  }
  return report;
}

int lint_main(int argc, const char* const* argv, std::string& out) {
  std::string root;
  std::string allowlist;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--allowlist" && i + 1 < argc) {
      allowlist = argv[++i];
    } else if (!arg.empty() && arg[0] != '-' && root.empty()) {
      root = arg;
    } else {
      out += "usage: cgps_lint <repo-root> [--allowlist FILE]\n";
      return 2;
    }
  }
  if (root.empty()) {
    out += "usage: cgps_lint <repo-root> [--allowlist FILE]\n";
    return 2;
  }

  const LintReport report = run_lint({root, allowlist});
  if (!report.error.empty()) {
    out += "cgps_lint: " + report.error + "\n";
    return 2;
  }
  int shown = 0;
  int suppressed = 0;
  for (const Finding& v : report.findings) {
    if (v.allowlisted) {
      ++suppressed;
      continue;
    }
    ++shown;
    out += v.file + ":" + std::to_string(v.line) + " " + v.rule + " " + v.message + "\n";
    if (!v.excerpt.empty()) out += "    > " + v.excerpt + "\n";
  }
  for (const AllowlistEntry& entry : report.stale) {
    out += allowlist + ":" + std::to_string(entry.line_no) +
           " stale-allowlist entry `" + entry.rule + " " + entry.path_suffix +
           "` matched nothing; delete it\n";
  }
  out += "cgps_lint: " + std::to_string(report.violations) + " violation(s), " +
         std::to_string(suppressed) + " allowlisted\n";
  return report.violations > 0 ? 1 : 0;
}

}  // namespace cgps::lint
