#include "util/lint/lint.hpp"

#include "util/json_writer.hpp"
#include "util/lint/include_graph.hpp"
#include "util/lint/scan.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

namespace cgps::lint {

namespace {

namespace fs = std::filesystem;

void add_finding(std::vector<Finding>& out, const FileUnit& f, int line,
                 std::string rule, std::string message) {
  Finding v;
  v.file = f.rel;
  v.line = line;
  v.rule = std::move(rule);
  v.message = std::move(message);
  if (line > 0) v.excerpt = line_text(f.raw, f.starts, line);
  out.push_back(std::move(v));
}

// --- rule: getenv-outside-env -------------------------------------------
void check_getenv(const FileUnit& f, std::vector<Finding>& out) {
  if (f.rel == "src/util/env.cpp") return;
  for (const std::size_t pos : token_offsets(f.lexed.stripped, "getenv")) {
    add_finding(out, f, line_of(f.starts, pos), "getenv-outside-env",
                "environment access must go through util/env (strict parsing, "
                "warn-once); src/util/env.cpp is the only allowed getenv site");
  }
}

// --- rule: naked-new ----------------------------------------------------
void check_naked_new(const FileUnit& f, std::vector<Finding>& out) {
  if (f.is_test) return;
  const std::string_view s = f.lexed.stripped;
  for (const std::size_t pos : token_offsets(s, "new")) {
    const std::size_t next = skip_ws(s, pos + 3);
    if (next >= s.size() || (!is_ident_char(s[next]) && s[next] != '(')) continue;
    add_finding(out, f, line_of(f.starts, pos), "naked-new",
                "owning allocations use std::make_unique/containers; naked new "
                "needs an allowlist justification");
  }
  for (const std::size_t pos : token_offsets(s, "delete")) {
    // `= delete` (deleted functions) is not a deallocation.
    std::size_t prev = pos;
    while (prev > 0 && std::isspace(static_cast<unsigned char>(s[prev - 1]))) --prev;
    if (prev > 0 && s[prev - 1] == '=') continue;
    add_finding(out, f, line_of(f.starts, pos), "naked-new",
                "manual delete is banned in non-test code; use RAII owners");
  }
}

// --- rule: exec-kernel-alloc ----------------------------------------------
// Kernel backend TUs (src/exec/backend_*.cpp) execute inside the plan
// executor's hot path: every buffer they touch was carved from the arena at
// bind time, so the whole TU must stay allocation-free — no heap calls and
// no owning containers (DESIGN.md §10). `new`/`delete` are already covered
// by naked-new; this rule catches the indirect allocators.
void check_exec_alloc(const FileUnit& f, std::vector<Finding>& out) {
  if (f.rel.rfind("src/exec/backend_", 0) != 0) return;
  for (const std::string_view token :
       {std::string_view("malloc"), std::string_view("calloc"), std::string_view("realloc"),
        std::string_view("free"), std::string_view("push_back"),
        std::string_view("emplace_back"), std::string_view("resize"),
        std::string_view("reserve"), std::string_view("make_unique"),
        std::string_view("make_shared"), std::string_view("vector"),
        std::string_view("string"), std::string_view("deque"), std::string_view("map"),
        std::string_view("unordered_map")}) {
    for (const std::size_t pos : token_offsets(f.lexed.stripped, token)) {
      add_finding(out, f, line_of(f.starts, pos), "exec-kernel-alloc",
                  "kernel backends are arena-only: `" + std::string(token) +
                      "` allocates or owns storage on the executor hot path "
                      "(kernels take caller-carved pointers)");
    }
  }
}

// --- rule: no-cout-outside-tools ------------------------------------------
// Library code (src/) must not write to stdout: user-facing text belongs to
// the CLIs (tools/, bench/, examples/) and diagnostics go through
// util/logging, which writes to stderr. A stray std::cout in a library TU
// corrupts machine-read stdout (bench JSON captures, piped tool output).
// Only the qualified name is flagged — a local identifier `cout` is legal.
void check_cout(const FileUnit& f, std::vector<Finding>& out) {
  if (f.rel.rfind("src/", 0) != 0) return;
  const std::string_view s = f.lexed.stripped;
  for (const std::size_t pos : token_offsets(s, "cout")) {
    std::size_t p = pos;
    while (p > 0 && std::isspace(static_cast<unsigned char>(s[p - 1]))) --p;
    if (p < 2 || s[p - 1] != ':' || s[p - 2] != ':') continue;
    p -= 2;
    while (p > 0 && std::isspace(static_cast<unsigned char>(s[p - 1]))) --p;
    if (p < 3 || s.compare(p - 3, 3, "std") != 0) continue;
    if (p > 3 && is_ident_char(s[p - 4])) continue;
    add_finding(out, f, line_of(f.starts, pos), "no-cout-outside-tools",
                "library code must not write to stdout; use util/logging "
                "(stderr) or move the print into a tools//bench CLI");
  }
}

// --- rule: header hygiene -----------------------------------------------
void check_headers(const FileUnit& f, std::vector<Finding>& out) {
  if (!f.is_header) return;
  if (f.raw.find("#pragma once") == std::string::npos)
    add_finding(out, f, 0, "header-pragma-once", "header is missing #pragma once");
  std::size_t pos = 0;
  const std::string_view s = f.lexed.stripped;
  while ((pos = s.find("using namespace", pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    if (left_ok)
      add_finding(out, f, line_of(f.starts, pos), "header-using-namespace",
                  "`using namespace` in a header leaks into every includer");
    pos += 15;
  }
}

// --- rules: metric-key-format / metric-key-registry ---------------------
// Shared extraction: every literal name handed to the metrics registry or
// TraceSpan as the whole first argument. Computed names (any non-literal
// first argument, or a literal spliced with +) are skipped — the histogram
// registry prefixes "trace." itself and per-layer span names are built at
// runtime.
template <typename Fn>
void for_each_instrument_literal(const FileUnit& f, Fn&& fn) {
  const std::string_view s = f.lexed.stripped;
  const auto literal_at = [&](std::size_t offset) -> const Literal* {
    for (const Literal& lit : f.lexed.literals)
      if (lit.start == offset) return &lit;
    return nullptr;
  };
  for (const std::string_view token :
       {std::string_view("metric_counter"), std::string_view("metric_gauge"),
        std::string_view("metric_histogram"), std::string_view("TraceSpan")}) {
    for (const std::size_t pos : token_offsets(s, token)) {
      std::size_t i = skip_ws(s, pos + token.size());
      // Allow one identifier between the type and the paren: `TraceSpan span(`.
      if (i < s.size() && is_ident_char(s[i])) {
        while (i < s.size() && is_ident_char(s[i])) ++i;
        i = skip_ws(s, i);
      }
      if (i >= s.size() || s[i] != '(') continue;
      i = skip_ws(s, i + 1);
      const Literal* lit = i < s.size() && s[i] == '"' ? literal_at(i) : nullptr;
      if (lit == nullptr) continue;
      const std::size_t after = skip_ws(s, lit->end + 1);
      if (after < s.size() && s[after] != ',' && s[after] != ')') continue;
      fn(*lit);
    }
  }
}

void check_metric_keys(const FileUnit& f, std::vector<Finding>& out) {
  for_each_instrument_literal(f, [&](const Literal& lit) {
    if (!is_dotted_metric_key(lit.value))
      add_finding(out, f, lit.line, "metric-key-format",
                  "instrument name \"" + lit.value +
                      "\" must be a dotted lowercase key like "
                      "\"sampling.extract\" (DESIGN.md §8)");
  });
}

// First code location that referenced a name, for cross-check findings.
struct SourceRef {
  std::string file;
  int line = 0;
};

void collect_metric_keys(const FileUnit& f, std::map<std::string, SourceRef>& refs) {
  for_each_instrument_literal(f, [&](const Literal& lit) {
    refs.emplace(lit.value, SourceRef{f.rel, lit.line});
  });
}

// Manifest rows: one key per line, `#` comments and blank lines skipped.
std::map<std::string, int> parse_key_manifest(std::string_view text) {
  std::map<std::string, int> out;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    ++line_no;
    const std::size_t eol = text.find('\n', pos);
    const std::string line = trim_copy(
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos));
    if (!line.empty() && line[0] != '#') out.emplace(line, line_no);
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return out;
}

// --- rule: env-var table cross-check ------------------------------------
void collect_env_refs(const FileUnit& f, std::map<std::string, SourceRef>& refs) {
  for (const Literal& lit : f.lexed.literals) {
    const std::string_view v = lit.value;
    for (const std::string_view prefix :
         {std::string_view("CIRCUITGPS_"), std::string_view("CGPS_")}) {
      std::size_t pos = 0;
      while ((pos = v.find(prefix, pos)) != std::string_view::npos) {
        const bool left_ok = pos == 0 || !(std::isupper(static_cast<unsigned char>(
                                               v[pos - 1])) ||
                                           v[pos - 1] == '_' ||
                                           std::isdigit(static_cast<unsigned char>(
                                               v[pos - 1])));
        std::size_t end = pos + prefix.size();
        while (end < v.size() &&
               (std::isupper(static_cast<unsigned char>(v[end])) ||
                std::isdigit(static_cast<unsigned char>(v[end])) || v[end] == '_'))
          ++end;
        if (left_ok && end > pos + prefix.size()) {
          std::string name(v.substr(pos, end - pos));
          while (!name.empty() && name.back() == '_') name.pop_back();
          refs.emplace(std::move(name), SourceRef{f.rel, lit.line});
        }
        pos = end;
      }
    }
  }
}

// Table rows look like `| \`NAME\` | default | meaning |`; only rows whose
// name carries an env prefix participate in the cross-check.
std::map<std::string, int> documented_env_vars(std::string_view readme) {
  std::map<std::string, int> out;
  int line = 0;
  std::size_t pos = 0;
  while (pos <= readme.size()) {
    ++line;
    const std::size_t eol = readme.find('\n', pos);
    std::string_view row = readme.substr(pos, eol == std::string_view::npos
                                                  ? std::string_view::npos
                                                  : eol - pos);
    const std::string text = trim_copy(row);
    if (text.size() > 3 && text[0] == '|') {
      const std::size_t tick = text.find('`');
      const std::size_t close = tick == std::string::npos
                                    ? std::string::npos
                                    : text.find('`', tick + 1);
      if (tick != std::string::npos && close != std::string::npos &&
          text.find_first_not_of("| ") == tick) {
        const std::string name = text.substr(tick + 1, close - tick - 1);
        if (name.rfind("CIRCUITGPS_", 0) == 0 || name.rfind("CGPS_", 0) == 0)
          out.emplace(name, line);
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return out;
}

}  // namespace

bool is_dotted_metric_key(std::string_view name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool saw_dot = false;
  char prev = '.';
  for (const char c : name) {
    if (c == '.') {
      if (prev == '.') return false;
      saw_dot = true;
    } else if (!(std::islower(static_cast<unsigned char>(c)) ||
                 std::isdigit(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
    prev = c;
  }
  return saw_dot;
}

std::string strip_comments_and_strings(std::string_view text) {
  return lex(text).stripped;
}

std::vector<AllowlistEntry> parse_allowlist(std::string_view text, std::string* error) {
  std::vector<AllowlistEntry> out;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    ++line_no;
    const std::size_t eol = text.find('\n', pos);
    const std::string line = trim_copy(
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos));
    if (!line.empty() && line[0] != '#') {
      std::istringstream ss(line);
      AllowlistEntry entry;
      entry.line_no = line_no;
      ss >> entry.rule >> entry.path_suffix;
      if (entry.path_suffix.empty()) {
        if (error != nullptr && error->empty())
          *error = "allowlist line " + std::to_string(line_no) +
                   ": want `<rule> <path-suffix> [line substring]`";
      } else {
        std::string rest;
        std::getline(ss, rest);
        entry.needle = trim_copy(rest);
        out.push_back(std::move(entry));
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  return out;
}

LintReport run_lint(const LintOptions& options) {
  Stopwatch watch;
  LintReport report;
  std::error_code ec;
  if (!fs::is_directory(fs::path(options.root), ec)) {
    report.error = "not a directory: " + options.root;
    return report;
  }

  std::vector<AllowlistEntry> allow;
  if (!options.allowlist_path.empty()) {
    std::string text;
    if (!read_file(options.allowlist_path, text)) {
      report.error = "cannot read allowlist: " + options.allowlist_path;
      return report;
    }
    allow = parse_allowlist(text, &report.error);
    if (!report.error.empty()) return report;
  }

  const std::vector<FileUnit> units = scan_tree(options.root, &report.error);
  if (!report.error.empty()) return report;
  report.files_scanned = static_cast<int>(units.size());

  // Per-file rules are independent, so they run in parallel with one result
  // slot per file; the in-order merge below keeps findings (and the
  // first-reference winner of each cross-check name) identical at any
  // thread count.
  struct PerFile {
    std::vector<Finding> findings;
    std::map<std::string, SourceRef> env_refs;
    std::map<std::string, SourceRef> metric_refs;
  };
  std::vector<PerFile> slots(units.size());
  par::parallel_for(
      0, static_cast<std::int64_t>(units.size()), 1,
      [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t idx = b; idx < e; ++idx) {
          const auto u = static_cast<std::size_t>(idx);
          const FileUnit& f = units[u];
          PerFile& slot = slots[u];
          check_getenv(f, slot.findings);
          check_naked_new(f, slot.findings);
          check_exec_alloc(f, slot.findings);
          check_cout(f, slot.findings);
          check_headers(f, slot.findings);
          check_metric_keys(f, slot.findings);
          // Tests are exempt: their literals name hypothetical variables and
          // throwaway instruments (the lint fixtures themselves,
          // strict-parsing probes) that would pollute the cross-checks both
          // ways.
          if (!f.is_test) {
            collect_env_refs(f, slot.env_refs);
            collect_metric_keys(f, slot.metric_refs);
          }
        }
      });
  std::map<std::string, SourceRef> env_refs;
  std::map<std::string, SourceRef> metric_refs;
  for (PerFile& slot : slots) {
    for (Finding& v : slot.findings) report.findings.push_back(std::move(v));
    for (auto& [name, ref] : slot.env_refs) env_refs.emplace(name, ref);
    for (auto& [name, ref] : slot.metric_refs) metric_refs.emplace(name, ref);
  }

  // The include-graph rule family (layering, cycles, include order, unused
  // includes, atomics discipline — see include_graph.hpp) runs over the
  // same scan, so cgps_lint and cgps_deps can never disagree.
  {
    DepsReport deps = analyze_includes(units, DepsOptions{options.root, "", ""});
    if (!deps.error.empty()) {
      report.error = deps.error;
      return report;
    }
    for (Finding& v : deps.findings) report.findings.push_back(std::move(v));
  }

  // --- rule: metric-key-registry ----------------------------------------
  // When tools/cgps_metric_keys.txt exists, every literal instrument/span
  // name in non-test code must appear in it (and every manifest row must be
  // registered somewhere), so the stats payload schema cannot drift without
  // a reviewed manifest diff. Absent manifest = rule off (fixture trees).
  std::string manifest_text;
  if (read_file(options.root + "/tools/cgps_metric_keys.txt", manifest_text)) {
    const std::map<std::string, int> manifest = parse_key_manifest(manifest_text);
    for (const auto& [name, ref] : metric_refs) {
      if (manifest.count(name) != 0) continue;
      Finding v;
      v.file = ref.file;
      v.line = ref.line;
      v.rule = "metric-key-registry";
      v.message = "instrument name \"" + name + "\" is registered in code but "
                  "missing from tools/cgps_metric_keys.txt; add a row (the "
                  "manifest is the reviewed schema of the stats payload)";
      report.findings.push_back(std::move(v));
    }
    for (const auto& [name, line] : manifest) {
      if (metric_refs.count(name) != 0) continue;
      Finding v;
      v.file = "tools/cgps_metric_keys.txt";
      v.line = line;
      v.rule = "metric-key-registry";
      v.message = "\"" + name + "\" is listed in the key manifest but no "
                  "non-test code registers it; delete the row";
      report.findings.push_back(std::move(v));
    }
  }

  std::string readme;
  read_file(options.root + "/README.md", readme);  // missing file = empty table
  const std::map<std::string, int> documented = documented_env_vars(readme);
  for (const auto& [name, ref] : env_refs) {
    if (documented.count(name) != 0) continue;
    Finding v;
    v.file = ref.file;
    v.line = ref.line;
    v.rule = "env-var-undocumented";
    v.message = name + " is read in code but missing from the README.md "
                       "environment-variable table";
    report.findings.push_back(std::move(v));
  }
  for (const auto& [name, line] : documented) {
    if (env_refs.count(name) != 0) continue;
    Finding v;
    v.file = "README.md";
    v.line = line;
    v.rule = "env-var-unreferenced";
    v.message = name + " is documented in the README.md table but no code "
                       "references it";
    report.findings.push_back(std::move(v));
  }

  // The operator guide, when present, must stay in lockstep with the code
  // the same way the README table does: its env-var table is the contract
  // operators configure daemons from, so a missing or dead row is a bug.
  std::string ops;
  if (read_file(options.root + "/docs/OPERATIONS.md", ops)) {
    const std::map<std::string, int> ops_documented = documented_env_vars(ops);
    for (const auto& [name, ref] : env_refs) {
      if (ops_documented.count(name) != 0) continue;
      Finding v;
      v.file = ref.file;
      v.line = ref.line;
      v.rule = "env-var-undocumented";
      v.message = name + " is read in code but missing from the "
                         "docs/OPERATIONS.md environment-variable table";
      report.findings.push_back(std::move(v));
    }
    for (const auto& [name, line] : ops_documented) {
      if (env_refs.count(name) != 0) continue;
      Finding v;
      v.file = "docs/OPERATIONS.md";
      v.line = line;
      v.rule = "env-var-unreferenced";
      v.message = name + " is documented in the docs/OPERATIONS.md table but "
                         "no code references it";
      report.findings.push_back(std::move(v));
    }
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
            });

  for (Finding& v : report.findings) {
    for (AllowlistEntry& entry : allow) {
      if (entry.rule != v.rule) continue;
      if (v.file.size() < entry.path_suffix.size() ||
          v.file.compare(v.file.size() - entry.path_suffix.size(),
                         entry.path_suffix.size(), entry.path_suffix) != 0)
        continue;
      if (!entry.needle.empty() && v.excerpt.find(entry.needle) == std::string::npos &&
          v.message.find(entry.needle) == std::string::npos)
        continue;
      v.allowlisted = true;
      ++entry.uses;
      break;
    }
    if (!v.allowlisted) ++report.violations;
  }
  for (const AllowlistEntry& entry : allow) {
    if (entry.uses == 0) {
      report.stale.push_back(entry);
      ++report.violations;
    }
  }
  report.wall_ms = watch.milliseconds();
  return report;
}

namespace {

// One `cgps-lint-v1` JSONL record per finding.
std::string finding_record(const Finding& v) {
  JsonWriter w;
  w.begin_object()
      .field("schema", "cgps-lint-v1")
      .field("file", v.file)
      .field("line", v.line)
      .field("rule", v.rule)
      .field("message", v.message)
      .field("excerpt", v.excerpt)
      .field("allowlisted", v.allowlisted)
      .end_object();
  return w.str();
}

// Minimal cgps-bench-v1 report so the CI trend gate can track the linter
// itself (wall time down-is-better, violations must stay at zero).
std::string lint_bench_report(const LintReport& report, std::string_view git) {
  JsonWriter w;
  w.begin_object()
      .field("schema", "cgps-bench-v1")
      .field("bench", "lint")
      .field("git", git);
  w.key("metrics")
      .begin_object()
      .field("lint.wall_ms", report.wall_ms)
      .field("lint.violations", report.violations)
      .field("lint.files", report.files_scanned)
      .end_object();
  w.key("directions")
      .begin_object()
      .field("lint.wall_ms", "down")
      .field("lint.violations", "down")
      .field("lint.files", "both")
      .end_object();
  w.end_object();
  return w.str();
}

}  // namespace

int lint_main(int argc, const char* const* argv, std::string& out) {
  std::string root;
  std::string allowlist;
  std::string bench_report_path;
  bool json = false;
  const auto usage = [&out] {
    out += "usage: cgps_lint <repo-root> [--allowlist FILE] [--json] "
           "[--bench-report FILE]\n";
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--allowlist" && i + 1 < argc) {
      allowlist = argv[++i];
    } else if (arg == "--bench-report" && i + 1 < argc) {
      bench_report_path = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (!arg.empty() && arg[0] != '-' && root.empty()) {
      root = arg;
    } else {
      return usage();
    }
  }
  if (root.empty()) return usage();

  const LintReport report = run_lint({root, allowlist});
  if (!report.error.empty()) {
    out += "cgps_lint: " + report.error + "\n";
    return 2;
  }

  int suppressed = 0;
  for (const Finding& v : report.findings)
    if (v.allowlisted) ++suppressed;

  if (json) {
    // JSONL: one record per finding (allowlisted included, flagged), one
    // per stale allowlist entry, then a summary record.
    for (const Finding& v : report.findings) out += finding_record(v) + "\n";
    for (const AllowlistEntry& entry : report.stale) {
      Finding v;
      v.file = allowlist;
      v.line = entry.line_no;
      v.rule = "stale-allowlist";
      v.message = "entry `" + entry.rule + " " + entry.path_suffix +
                  "` matched nothing; delete it";
      out += finding_record(v) + "\n";
    }
    JsonWriter w;
    w.begin_object()
        .field("schema", "cgps-lint-v1")
        .field("violations", report.violations)
        .field("allowlisted", suppressed)
        .field("files", report.files_scanned)
        .field("wall_ms", report.wall_ms)
        .end_object();
    out += w.str() + "\n";
  } else {
    for (const Finding& v : report.findings) {
      if (v.allowlisted) continue;
      out += v.file + ":" + std::to_string(v.line) + " " + v.rule + " " + v.message + "\n";
      if (!v.excerpt.empty()) out += "    > " + v.excerpt + "\n";
    }
    for (const AllowlistEntry& entry : report.stale) {
      out += allowlist + ":" + std::to_string(entry.line_no) +
             " stale-allowlist entry `" + entry.rule + " " + entry.path_suffix +
             "` matched nothing; delete it\n";
    }
    char wall[64];
    std::snprintf(wall, sizeof(wall), "%.1f", report.wall_ms);
    out += "cgps_lint: " + std::to_string(report.violations) + " violation(s), " +
           std::to_string(suppressed) + " allowlisted, " +
           std::to_string(report.files_scanned) + " files in " + wall + " ms\n";
  }

  if (!bench_report_path.empty()) {
#ifdef CGPS_GIT_DESCRIBE
    const std::string_view git = CGPS_GIT_DESCRIBE;
#else
    const std::string_view git = "unknown";
#endif
    const std::string doc = lint_bench_report(report, git);
    std::FILE* f = std::fopen(bench_report_path.c_str(), "wb");
    if (f == nullptr) {
      out += "cgps_lint: cannot write bench report: " + bench_report_path + "\n";
      return 2;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return report.violations > 0 ? 1 : 0;
}

}  // namespace cgps::lint
