#include "util/logging.hpp"

#include "util/env.hpp"

#include <iostream>

namespace cgps {

namespace {

// Strict CGPS_LOG_LEVEL parse (util/env semantics): an unknown name is
// reported once and falls back to the default, never silently accepted.
// The warning goes through log_message directly — log_warn would re-enter
// log_level() while its magic static is still initializing.
LogLevel initial_level() {
  const std::string v = env_log_level_name();
  if (!v.empty()) {
    if (v == "debug") return LogLevel::kDebug;
    if (v == "info") return LogLevel::kInfo;
    if (v == "warn") return LogLevel::kWarn;
    if (v == "error") return LogLevel::kError;
    if (v == "off") return LogLevel::kOff;
    log_message(LogLevel::kWarn, "ignoring CGPS_LOG_LEVEL=\"" + v +
                                     "\": want debug|info|warn|error|off; using warn");
  }
  return LogLevel::kWarn;
}

LogLevel& level_ref() {
  static LogLevel level = initial_level();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_ref(); }
void set_log_level(LogLevel level) { level_ref() = level; }

void log_message(LogLevel level, const std::string& msg) {
  std::cerr << "[cgps:" << level_name(level) << "] " << msg << '\n';
}

}  // namespace cgps
