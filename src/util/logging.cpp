#include "util/logging.hpp"

#include <cstdlib>
#include <iostream>

namespace cgps {

namespace {

LogLevel initial_level() {
  if (const char* env = std::getenv("CGPS_LOG_LEVEL")) {
    const std::string v = env;
    if (v == "debug") return LogLevel::kDebug;
    if (v == "info") return LogLevel::kInfo;
    if (v == "warn") return LogLevel::kWarn;
    if (v == "error") return LogLevel::kError;
    if (v == "off") return LogLevel::kOff;
  }
  return LogLevel::kWarn;
}

LogLevel& level_ref() {
  static LogLevel level = initial_level();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_ref(); }
void set_log_level(LogLevel level) { level_ref() = level; }

void log_message(LogLevel level, const std::string& msg) {
  std::cerr << "[cgps:" << level_name(level) << "] " << msg << '\n';
}

}  // namespace cgps
