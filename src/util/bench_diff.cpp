#include "util/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/json_writer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace cgps {

namespace {

// %+.2f without locale surprises; NaN renders as "n/a" (absent side).
std::string fmt_value(double v) {
  if (!std::isfinite(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::string(buf);
}

std::string fmt_delta(double pct) {
  if (!std::isfinite(pct)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", pct);
  return std::string(buf);
}

}  // namespace

std::optional<BenchReportView> parse_bench_report(std::string_view text, std::string* error) {
  std::string parse_error;
  const std::optional<JsonValue> doc = json_parse(text, &parse_error);
  if (!doc) {
    if (error) *error = "JSON parse error: " + parse_error;
    return std::nullopt;
  }
  if (doc->type != JsonValue::Type::kObject) {
    if (error) *error = "report root is not an object";
    return std::nullopt;
  }
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || schema->type != JsonValue::Type::kString ||
      schema->string != "cgps-bench-v1") {
    if (error) *error = "missing or unexpected \"schema\" (want \"cgps-bench-v1\")";
    return std::nullopt;
  }
  const JsonValue* bench = doc->find("bench");
  if (bench == nullptr || bench->type != JsonValue::Type::kString || bench->string.empty()) {
    if (error) *error = "missing or non-string \"bench\"";
    return std::nullopt;
  }
  const JsonValue* metrics = doc->find("metrics");
  if (metrics == nullptr || metrics->type != JsonValue::Type::kObject) {
    if (error) *error = "missing or non-object \"metrics\"";
    return std::nullopt;
  }

  BenchReportView view;
  view.bench = bench->string;
  if (const JsonValue* git = doc->find("git");
      git != nullptr && git->type == JsonValue::Type::kString) {
    view.git = git->string;
  }
  for (const auto& [name, value] : metrics->object) {
    if (value.type != JsonValue::Type::kNumber) {
      if (error) *error = "metric \"" + name + "\" is not a number";
      return std::nullopt;
    }
    view.metrics.emplace_back(name, value.number);
  }
  if (const JsonValue* wall = doc->find("wall_seconds");
      wall != nullptr && wall->type == JsonValue::Type::kNumber) {
    view.wall_seconds = wall->number;
  }
  return view;
}

std::optional<BenchReportView> load_bench_report(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot read " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string inner;
  std::optional<BenchReportView> view = parse_bench_report(buf.str(), &inner);
  if (!view && error) *error = path + ": " + inner;
  return view;
}

bool metric_higher_is_better(std::string_view name) {
  static constexpr std::string_view kHigherBetter[] = {
      "auc", "acc", "f1", "r2", "precision", "recall", "score", "hit", "throughput",
  };
  const std::string lowered = to_lower(name);
  for (const std::string_view token : kHigherBetter) {
    if (lowered.find(token) != std::string::npos) return true;
  }
  return false;
}

BenchDiffResult diff_bench_reports(const BenchReportView& baseline,
                                   const BenchReportView& candidate,
                                   const BenchDiffOptions& options) {
  auto metrics_of = [&options](const BenchReportView& r) {
    std::vector<std::pair<std::string, double>> m = r.metrics;
    if (options.include_wall) m.emplace_back("wall_seconds", r.wall_seconds);
    return m;
  };
  const auto base = metrics_of(baseline);
  const auto cand = metrics_of(candidate);
  auto find_in = [](const std::vector<std::pair<std::string, double>>& m,
                    const std::string& name) -> const double* {
    for (const auto& [n, v] : m)
      if (n == name) return &v;
    return nullptr;
  };

  BenchDiffResult result;
  for (const auto& [name, base_value] : base) {
    BenchDiffRow row;
    row.metric = name;
    row.in_baseline = true;
    row.baseline = base_value;
    row.higher_is_better = metric_higher_is_better(name);
    if (const double* cand_value = find_in(cand, name)) {
      row.in_candidate = true;
      row.candidate = *cand_value;
      const double denom = std::max(std::abs(base_value), 1e-12);
      row.delta_pct = (row.candidate - row.baseline) / denom * 100.0;
      const double bad_move = row.higher_is_better ? -row.delta_pct : row.delta_pct;
      if (bad_move > options.tolerance_pct) {
        row.status = "REGRESSED";
        ++result.regressions;
      } else if (bad_move < -options.tolerance_pct) {
        row.status = "improved";
      } else {
        row.status = "ok";
      }
    } else {
      row.status = "MISSING";  // baseline metric dropped = regression
      ++result.regressions;
    }
    result.rows.push_back(std::move(row));
  }
  for (const auto& [name, cand_value] : cand) {
    if (find_in(base, name) != nullptr) continue;
    BenchDiffRow row;
    row.metric = name;
    row.in_candidate = true;
    row.candidate = cand_value;
    row.higher_is_better = metric_higher_is_better(name);
    row.status = "new";
    result.rows.push_back(std::move(row));
  }
  return result;
}

std::string render_bench_diff(const BenchReportView& baseline,
                              const BenchReportView& candidate,
                              const BenchDiffResult& result,
                              const BenchDiffOptions& options) {
  std::string out;
  out += "bench:     " + baseline.bench;
  if (candidate.bench != baseline.bench) out += " vs " + candidate.bench;
  out += "\n";
  out += "baseline:  git " + (baseline.git.empty() ? "?" : baseline.git) + "\n";
  out += "candidate: git " + (candidate.git.empty() ? "?" : candidate.git) + "\n";

  TextTable table({"metric", "baseline", "candidate", "delta", "dir", "status"});
  for (const BenchDiffRow& row : result.rows) {
    table.add_row({
        row.metric,
        row.in_baseline ? fmt_value(row.baseline) : "n/a",
        row.in_candidate ? fmt_value(row.candidate) : "n/a",
        row.in_baseline && row.in_candidate ? fmt_delta(row.delta_pct) : "n/a",
        row.higher_is_better ? "up" : "down",
        row.status,
    });
  }
  out += table.to_string();

  char verdict[128];
  std::snprintf(verdict, sizeof(verdict),
                "%d regression(s) at tolerance %.2f%% over %d metric(s)\n",
                result.regressions, options.tolerance_pct,
                static_cast<int>(result.rows.size()));
  out += verdict;
  return out;
}

int bench_diff_main(int argc, const char* const* argv, std::string& out) {
  BenchDiffOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--tolerance-pct") {
      if (i + 1 >= argc) {
        out += "--tolerance-pct needs a value\n";
        return 2;
      }
      try {
        options.tolerance_pct = std::stod(argv[++i]);
      } catch (...) {
        out += "--tolerance-pct: not a number\n";
        return 2;
      }
      if (options.tolerance_pct < 0) {
        out += "--tolerance-pct must be >= 0\n";
        return 2;
      }
    } else if (arg == "--include-wall") {
      options.include_wall = true;
    } else if (!arg.empty() && arg[0] == '-') {
      out += "unknown flag: " + std::string(arg) + "\n";
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.size() != 2) {
    out +=
        "usage: cgps_bench_diff <baseline.json> <candidate.json> "
        "[--tolerance-pct N] [--include-wall]\n";
    return 2;
  }

  std::string error;
  const std::optional<BenchReportView> baseline = load_bench_report(paths[0], &error);
  if (!baseline) {
    out += "baseline: " + error + "\n";
    return 2;
  }
  const std::optional<BenchReportView> candidate = load_bench_report(paths[1], &error);
  if (!candidate) {
    out += "candidate: " + error + "\n";
    return 2;
  }

  const BenchDiffResult result = diff_bench_reports(*baseline, *candidate, options);
  out += render_bench_diff(*baseline, *candidate, result, options);
  return result.regressions > 0 ? 1 : 0;
}

}  // namespace cgps
