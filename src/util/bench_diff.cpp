#include "util/bench_diff.hpp"

#include "util/json_writer.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cgps {

namespace {

// %+.2f without locale surprises; NaN renders as "n/a" (absent side).
std::string fmt_value(double v) {
  if (!std::isfinite(v)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::string(buf);
}

std::string fmt_delta(double pct) {
  if (!std::isfinite(pct)) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", pct);
  return std::string(buf);
}

bool matches_skip(const std::vector<std::string>& skip, std::string_view name) {
  for (const std::string& token : skip)
    if (!token.empty() && name.find(token) != std::string_view::npos) return true;
  return false;
}

double relative_delta_pct(double from, double to) {
  const double denom = std::max(std::abs(from), 1e-12);
  return (to - from) / denom * 100.0;
}

// Signed size of a move in the metric's bad direction: positive = worse.
double bad_move(MetricDirection direction, double delta_pct) {
  switch (direction) {
    case MetricDirection::kHigherIsBetter:
      return -delta_pct;
    case MetricDirection::kLowerIsBetter:
      return delta_pct;
    case MetricDirection::kTwoSided:
      return std::abs(delta_pct);
  }
  return delta_pct;
}

std::optional<MetricDirection> direction_from_token(std::string_view token) {
  if (token == "down") return MetricDirection::kLowerIsBetter;
  if (token == "up") return MetricDirection::kHigherIsBetter;
  if (token == "both") return MetricDirection::kTwoSided;
  return std::nullopt;
}

}  // namespace

std::string_view metric_direction_token(MetricDirection direction) {
  switch (direction) {
    case MetricDirection::kLowerIsBetter:
      return "down";
    case MetricDirection::kHigherIsBetter:
      return "up";
    case MetricDirection::kTwoSided:
      return "both";
  }
  return "down";
}

std::optional<BenchReportView> parse_bench_report(std::string_view text, std::string* error) {
  std::string parse_error;
  const std::optional<JsonValue> doc = json_parse(text, &parse_error);
  if (!doc) {
    if (error) *error = "JSON parse error: " + parse_error;
    return std::nullopt;
  }
  if (doc->type != JsonValue::Type::kObject) {
    if (error) *error = "report root is not an object";
    return std::nullopt;
  }
  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || schema->type != JsonValue::Type::kString ||
      schema->string != "cgps-bench-v1") {
    if (error) *error = "missing or unexpected \"schema\" (want \"cgps-bench-v1\")";
    return std::nullopt;
  }
  const JsonValue* bench = doc->find("bench");
  if (bench == nullptr || bench->type != JsonValue::Type::kString || bench->string.empty()) {
    if (error) *error = "missing or non-string \"bench\"";
    return std::nullopt;
  }
  const JsonValue* metrics = doc->find("metrics");
  if (metrics == nullptr || metrics->type != JsonValue::Type::kObject) {
    if (error) *error = "missing or non-object \"metrics\"";
    return std::nullopt;
  }

  BenchReportView view;
  view.bench = bench->string;
  if (const JsonValue* git = doc->find("git");
      git != nullptr && git->type == JsonValue::Type::kString) {
    view.git = git->string;
  }
  for (const auto& [name, value] : metrics->object) {
    if (value.type != JsonValue::Type::kNumber) {
      if (error) *error = "metric \"" + name + "\" is not a number";
      return std::nullopt;
    }
    view.metrics.emplace_back(name, value.number);
  }
  if (const JsonValue* directions = doc->find("directions");
      directions != nullptr && directions->type == JsonValue::Type::kObject) {
    for (const auto& [name, value] : directions->object) {
      if (value.type != JsonValue::Type::kString) {
        if (error) *error = "direction of \"" + name + "\" is not a string";
        return std::nullopt;
      }
      const std::optional<MetricDirection> dir = direction_from_token(value.string);
      if (!dir) {
        if (error)
          *error = "direction of \"" + name + "\" is \"" + value.string +
                   "\" (want \"down\", \"up\", or \"both\")";
        return std::nullopt;
      }
      view.directions.emplace_back(name, *dir);
    }
  }
  if (const JsonValue* wall = doc->find("wall_seconds");
      wall != nullptr && wall->type == JsonValue::Type::kNumber) {
    view.wall_seconds = wall->number;
  }
  return view;
}

std::optional<BenchReportView> load_bench_report(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot read " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string inner;
  std::optional<BenchReportView> view = parse_bench_report(buf.str(), &inner);
  if (!view && error) *error = path + ": " + inner;
  if (view) view->source = path;
  return view;
}

bool metric_higher_is_better(std::string_view name) {
  static constexpr std::string_view kHigherBetter[] = {
      "auc", "acc", "f1", "r2", "precision", "recall", "score", "hit", "throughput",
  };
  const std::string lowered = to_lower(name);
  for (const std::string_view token : kHigherBetter) {
    if (lowered.find(token) != std::string::npos) return true;
  }
  return false;
}

MetricDirection metric_direction(const BenchReportView& report, std::string_view name) {
  for (const auto& [metric, direction] : report.directions)
    if (metric == name) return direction;
  return metric_higher_is_better(name) ? MetricDirection::kHigherIsBetter
                                       : MetricDirection::kLowerIsBetter;
}

BenchDiffResult diff_bench_reports(const BenchReportView& baseline,
                                   const BenchReportView& candidate,
                                   const BenchDiffOptions& options) {
  auto metrics_of = [&options](const BenchReportView& r) {
    std::vector<std::pair<std::string, double>> m = r.metrics;
    if (options.include_wall) m.emplace_back("wall_seconds", r.wall_seconds);
    return m;
  };
  const auto base = metrics_of(baseline);
  const auto cand = metrics_of(candidate);
  auto find_in = [](const std::vector<std::pair<std::string, double>>& m,
                    const std::string& name) -> const double* {
    for (const auto& [n, v] : m)
      if (n == name) return &v;
    return nullptr;
  };
  // Baseline metadata wins: the committed baseline is the contract. A metric
  // only the candidate declares (e.g. a newly added one) uses the
  // candidate's; reports without metadata fall back to the name heuristic.
  auto direction_of = [&](const std::string& name) {
    for (const auto& [metric, direction] : baseline.directions)
      if (metric == name) return direction;
    return metric_direction(candidate, name);
  };

  BenchDiffResult result;
  for (const auto& [name, base_value] : base) {
    BenchDiffRow row;
    row.metric = name;
    row.in_baseline = true;
    row.baseline = base_value;
    row.direction = direction_of(name);
    const bool skipped = matches_skip(options.skip, name);
    if (const double* cand_value = find_in(cand, name)) {
      row.in_candidate = true;
      row.candidate = *cand_value;
      row.delta_pct = relative_delta_pct(row.baseline, row.candidate);
      const double worse = bad_move(row.direction, row.delta_pct);
      if (skipped) {
        row.status = "skipped";
      } else if (worse > options.tolerance_pct) {
        row.status = "REGRESSED";
        ++result.regressions;
      } else if (worse < -options.tolerance_pct) {
        row.status = "improved";
      } else {
        row.status = "ok";
      }
    } else if (skipped) {
      row.status = "skipped";
    } else {
      row.status = "MISSING";  // baseline metric dropped = regression
      ++result.regressions;
    }
    result.rows.push_back(std::move(row));
  }
  for (const auto& [name, cand_value] : cand) {
    if (find_in(base, name) != nullptr) continue;
    BenchDiffRow row;
    row.metric = name;
    row.in_candidate = true;
    row.candidate = cand_value;
    row.direction = direction_of(name);
    row.status = matches_skip(options.skip, name) ? "skipped" : "new";
    result.rows.push_back(std::move(row));
  }
  return result;
}

std::string render_bench_diff(const BenchReportView& baseline,
                              const BenchReportView& candidate,
                              const BenchDiffResult& result,
                              const BenchDiffOptions& options) {
  std::string out;
  out += "bench:     " + baseline.bench;
  if (candidate.bench != baseline.bench) out += " vs " + candidate.bench;
  out += "\n";
  out += "baseline:  git " + (baseline.git.empty() ? "?" : baseline.git) + "\n";
  out += "candidate: git " + (candidate.git.empty() ? "?" : candidate.git) + "\n";

  TextTable table({"metric", "baseline", "candidate", "delta", "dir", "status"});
  for (const BenchDiffRow& row : result.rows) {
    table.add_row({
        row.metric,
        row.in_baseline ? fmt_value(row.baseline) : "n/a",
        row.in_candidate ? fmt_value(row.candidate) : "n/a",
        row.in_baseline && row.in_candidate ? fmt_delta(row.delta_pct) : "n/a",
        std::string(metric_direction_token(row.direction)),
        row.status,
    });
  }
  out += table.to_string();

  char verdict[128];
  std::snprintf(verdict, sizeof(verdict),
                "%d regression(s) at tolerance %.2f%% over %d metric(s)\n",
                result.regressions, options.tolerance_pct,
                static_cast<int>(result.rows.size()));
  out += verdict;
  return out;
}

int bench_diff_main(int argc, const char* const* argv, std::string& out) {
  BenchDiffOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--tolerance-pct") {
      if (i + 1 >= argc) {
        out += "--tolerance-pct needs a value\n";
        return 2;
      }
      try {
        options.tolerance_pct = std::stod(argv[++i]);
      } catch (...) {
        out += "--tolerance-pct: not a number\n";
        return 2;
      }
      if (options.tolerance_pct < 0) {
        out += "--tolerance-pct must be >= 0\n";
        return 2;
      }
    } else if (arg == "--include-wall") {
      options.include_wall = true;
    } else if (arg == "--skip") {
      if (i + 1 >= argc) {
        out += "--skip needs a substring\n";
        return 2;
      }
      options.skip.emplace_back(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      out += "unknown flag: " + std::string(arg) + "\n";
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.size() != 2) {
    out +=
        "usage: cgps_bench_diff <baseline.json> <candidate.json> "
        "[--tolerance-pct N] [--include-wall] [--skip SUBSTR]...\n";
    return 2;
  }

  std::string error;
  const std::optional<BenchReportView> baseline = load_bench_report(paths[0], &error);
  if (!baseline) {
    out += "baseline: " + error + "\n";
    return 2;
  }
  const std::optional<BenchReportView> candidate = load_bench_report(paths[1], &error);
  if (!candidate) {
    out += "candidate: " + error + "\n";
    return 2;
  }

  const BenchDiffResult result = diff_bench_reports(*baseline, *candidate, options);
  out += render_bench_diff(*baseline, *candidate, result, options);
  return result.regressions > 0 ? 1 : 0;
}

// ---------------------------------------------------------------- trend --

namespace {

// ASCII min..max ramp: one character per report carrying the metric. Dense
// enough to spot a step change at a glance without scraping the numbers.
std::string spark_line(const std::vector<double>& values) {
  static constexpr char kRamp[] = "_.-=+*#@";
  constexpr int kLevels = static_cast<int>(sizeof(kRamp) - 1);
  if (values.empty()) return "";
  const auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  const double lo = *lo_it, hi = *hi_it;
  std::string out;
  out.reserve(values.size());
  for (const double v : values) {
    const double t = hi > lo ? (v - lo) / (hi - lo) : 0.0;
    const int level = std::clamp(static_cast<int>(t * (kLevels - 1) + 0.5), 0, kLevels - 1);
    out += kRamp[level];
  }
  return out;
}

}  // namespace

BenchTrendResult trend_bench_reports(const std::vector<BenchReportView>& series,
                                     const BenchTrendOptions& options) {
  BenchTrendResult result;
  const std::size_t begin =
      options.last_n > 0 && options.last_n < series.size() ? series.size() - options.last_n : 0;
  const std::size_t n = series.size() - begin;
  result.reports = n;
  if (n == 0) return result;
  result.bench = series[begin].bench;
  result.first_git = series[begin].git;
  result.last_git = series.back().git;

  auto metrics_of = [&options](const BenchReportView& r) {
    std::vector<std::pair<std::string, double>> m = r.metrics;
    if (options.include_wall) m.emplace_back("wall_seconds", r.wall_seconds);
    return m;
  };

  // Metric universe ordered by first appearance, oldest report first, so the
  // trend table reads like the oldest report plus later additions.
  std::vector<std::string> universe;
  for (std::size_t i = begin; i < series.size(); ++i)
    for (const auto& [name, value] : metrics_of(series[i]))
      if (std::find(universe.begin(), universe.end(), name) == universe.end())
        universe.push_back(name);

  for (const std::string& name : universe) {
    BenchTrendRow row;
    row.metric = name;
    // Newest report's metadata wins — it reflects the current bench source.
    row.direction = metric_direction(series.back(), name);
    std::vector<double> values;
    bool in_latest = false;
    for (std::size_t i = begin; i < series.size(); ++i) {
      for (const auto& [metric, value] : metrics_of(series[i])) {
        if (metric != name) continue;
        values.push_back(value);
        if (i + 1 == series.size()) in_latest = true;
        break;
      }
    }
    row.present = static_cast<int>(values.size());
    if (!values.empty()) {
      row.first = values.front();
      row.last = values.back();
      const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
      row.min = *lo;
      row.max = *hi;
      row.delta_pct = relative_delta_pct(row.first, row.last);
      row.spark = spark_line(values);
    }
    const bool skipped = matches_skip(options.skip, name);
    if (skipped) {
      row.status = "skipped";
    } else if (!in_latest) {
      row.status = "MISSING";  // tracked metric vanished from the newest report
      ++result.drifts;
    } else if (values.size() <= 1) {
      row.status = "new";
    } else {
      const double worse = bad_move(row.direction, row.delta_pct);
      if (worse > options.tolerance_pct) {
        row.status = "DRIFTED";
        ++result.drifts;
      } else if (worse < -options.tolerance_pct) {
        row.status = "improved";
      } else {
        row.status = "ok";
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

std::string render_bench_trend(const BenchTrendResult& result,
                               const BenchTrendOptions& options) {
  std::string out;
  out += "bench:   " + result.bench + "\n";
  char span[192];
  std::snprintf(span, sizeof(span), "reports: %d (git %s .. %s)\n",
                static_cast<int>(result.reports),
                result.first_git.empty() ? "?" : result.first_git.c_str(),
                result.last_git.empty() ? "?" : result.last_git.c_str());
  out += span;

  TextTable table({"metric", "dir", "n", "first", "last", "min", "max", "delta", "trend",
                   "status"});
  for (const BenchTrendRow& row : result.rows) {
    table.add_row({
        row.metric,
        std::string(metric_direction_token(row.direction)),
        std::to_string(row.present),
        row.present > 0 ? fmt_value(row.first) : "n/a",
        row.present > 0 ? fmt_value(row.last) : "n/a",
        row.present > 0 ? fmt_value(row.min) : "n/a",
        row.present > 0 ? fmt_value(row.max) : "n/a",
        row.present > 1 ? fmt_delta(row.delta_pct) : "n/a",
        row.spark,
        row.status,
    });
  }
  out += table.to_string();

  char verdict[160];
  std::snprintf(verdict, sizeof(verdict),
                "%d drift(s) at tolerance %.2f%% over %d metric(s), %d report(s)\n",
                result.drifts, options.tolerance_pct, static_cast<int>(result.rows.size()),
                static_cast<int>(result.reports));
  out += verdict;
  return out;
}

int bench_trend_main(int argc, const char* const* argv, std::string& out) {
  BenchTrendOptions options;
  std::string bench_filter;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--tolerance-pct") {
      if (i + 1 >= argc) {
        out += "--tolerance-pct needs a value\n";
        return 2;
      }
      try {
        options.tolerance_pct = std::stod(argv[++i]);
      } catch (...) {
        out += "--tolerance-pct: not a number\n";
        return 2;
      }
      if (options.tolerance_pct < 0) {
        out += "--tolerance-pct must be >= 0\n";
        return 2;
      }
    } else if (arg == "--last") {
      if (i + 1 >= argc) {
        out += "--last needs a count\n";
        return 2;
      }
      try {
        const int n = std::stoi(argv[++i]);
        if (n < 1) throw std::invalid_argument("non-positive");
        options.last_n = static_cast<std::size_t>(n);
      } catch (...) {
        out += "--last: want a positive integer\n";
        return 2;
      }
    } else if (arg == "--bench") {
      if (i + 1 >= argc) {
        out += "--bench needs a name\n";
        return 2;
      }
      bench_filter = argv[++i];
    } else if (arg == "--skip") {
      if (i + 1 >= argc) {
        out += "--skip needs a substring\n";
        return 2;
      }
      options.skip.emplace_back(argv[++i]);
    } else if (arg == "--include-wall") {
      options.include_wall = true;
    } else if (!arg.empty() && arg[0] == '-') {
      out += "unknown flag: " + std::string(arg) + "\n";
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    out +=
        "usage: cgps_bench_trend <history-dir | report.json...> [--bench NAME] "
        "[--last N] [--tolerance-pct N] [--skip SUBSTR]... [--include-wall]\n";
    return 2;
  }

  // Expand directory arguments to their *.json entries. Lexicographic order
  // is chronological under the bench/history/ <seq>-<git>.json convention.
  std::vector<std::string> paths;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(input, ec)) {
      std::vector<std::string> entries;
      for (const auto& entry : std::filesystem::directory_iterator(input, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".json")
          entries.push_back(entry.path().string());
      }
      if (ec) {
        out += "cannot list " + input + "\n";
        return 2;
      }
      std::sort(entries.begin(), entries.end());
      paths.insert(paths.end(), entries.begin(), entries.end());
    } else {
      paths.push_back(input);
    }
  }

  std::vector<BenchReportView> series;
  for (const std::string& path : paths) {
    std::string error;
    std::optional<BenchReportView> view = load_bench_report(path, &error);
    if (!view) {
      out += error + "\n";
      return 2;
    }
    if (!bench_filter.empty() && view->bench != bench_filter) continue;
    if (!series.empty() && view->bench != series.front().bench) {
      out += "mixed bench names (\"" + series.front().bench + "\" vs \"" + view->bench +
             "\" in " + path + "); pass --bench NAME to select one\n";
      return 2;
    }
    series.push_back(std::move(*view));
  }
  if (series.size() < 2) {
    out += "need at least two reports to trend (got " + std::to_string(series.size()) + ")\n";
    return 2;
  }

  const BenchTrendResult result = trend_bench_reports(series, options);
  out += render_bench_trend(result, options);
  return result.drifts > 0 ? 1 : 0;
}

}  // namespace cgps
