#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace cgps {

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with_icase(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i])))
      return false;
  }
  return true;
}

std::optional<double> parse_spice_number(std::string_view s) {
  if (s.empty()) return std::nullopt;
  double mantissa = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, mantissa);
  if (ec != std::errc() || ptr == begin) return std::nullopt;

  std::string_view rest(ptr, static_cast<std::size_t>(end - ptr));
  if (rest.empty()) return mantissa;

  double scale = 1.0;
  if (starts_with_icase(rest, "meg")) {
    scale = 1e6;
  } else {
    switch (std::tolower(static_cast<unsigned char>(rest[0]))) {
      case 'a': scale = 1e-18; break;
      case 'f': scale = 1e-15; break;
      case 'p': scale = 1e-12; break;
      case 'n': scale = 1e-9; break;
      case 'u': scale = 1e-6; break;
      case 'm': scale = 1e-3; break;
      case 'k': scale = 1e3; break;
      case 'x': scale = 1e6; break;
      case 'g': scale = 1e9; break;
      default:
        // Unknown trailing characters (e.g. a plain unit like "F"): accept
        // the mantissa only if the remainder is purely alphabetic.
        for (char c : rest) {
          if (!std::isalpha(static_cast<unsigned char>(c))) return std::nullopt;
        }
        return mantissa;
    }
  }
  return mantissa * scale;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string format_si(double v, int decimals) {
  struct Suffix {
    double scale;
    const char* name;
  };
  static constexpr Suffix kSuffixes[] = {
      {1e9, "g"},  {1e6, "meg"}, {1e3, "k"},  {1.0, ""},    {1e-3, "m"},
      {1e-6, "u"}, {1e-9, "n"},  {1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"},
  };
  if (v == 0.0) return "0";
  const double mag = std::fabs(v);
  for (const auto& suffix : kSuffixes) {
    if (mag >= suffix.scale * 0.9999) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.*f%s", decimals, v / suffix.scale, suffix.name);
      return buf;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", decimals, v);
  return buf;
}

}  // namespace cgps
