// Linear RC transient simulator (backward-Euler MNA).
//
// Used for the paper's Fig. 4 validation: switching energy of victim nets
// with extracted vs. predicted parasitic capacitance. Supports resistors,
// capacitors (to ground or coupling), and step voltage sources with series
// resistance (Norton-equivalent stamping). The system matrix is constant
// under a fixed timestep, so it is factored once per network.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace cgps {

// Node -1 is ground.
inline constexpr std::int32_t kGroundNode = -1;

class RcNetwork {
 public:
  std::int32_t add_node();
  void add_resistor(std::int32_t a, std::int32_t b, double ohms);
  void add_capacitor(std::int32_t a, std::int32_t b, double farads);
  // Step source: node is pulled toward `voltage(t)` through `series_ohms`.
  void add_source(std::int32_t node, std::function<double(double)> voltage,
                  double series_ohms);

  std::int32_t num_nodes() const { return n_nodes_; }

  struct TransientResult {
    std::vector<double> time;
    std::vector<std::vector<double>> voltage;  // per step, per node
    // Energy delivered by all sources: sum over steps of v_src * i_src * dt.
    double source_energy = 0.0;
  };

  TransientResult simulate(double t_stop, double dt,
                           const std::vector<double>& initial_voltage = {}) const;

 private:
  struct TwoTerminal {
    std::int32_t a, b;
    double value;
  };
  struct Source {
    std::int32_t node;
    std::function<double(double)> voltage;
    double conductance;
  };

  std::int32_t n_nodes_ = 0;
  std::vector<TwoTerminal> resistors_;
  std::vector<TwoTerminal> capacitors_;
  std::vector<Source> sources_;
};

// Convenience waveform: 0 until t_step, then `level` (ideal step).
std::function<double(double)> step_wave(double level, double t_step = 0.0);

}  // namespace cgps
