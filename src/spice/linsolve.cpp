#include "spice/linsolve.hpp"

#include <cmath>
#include <stdexcept>

namespace cgps {

LuFactorization::LuFactorization(std::vector<double> a, std::int64_t n)
    : lu_(std::move(a)), n_(n) {
  if (static_cast<std::int64_t>(lu_.size()) != n * n)
    throw std::invalid_argument("LuFactorization: size mismatch");
  perm_.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) perm_[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(i);

  for (std::int64_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::int64_t pivot = k;
    double best = std::fabs(lu_[static_cast<std::size_t>(k * n + k)]);
    for (std::int64_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu_[static_cast<std::size_t>(i * n + k)]);
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best < 1e-300) throw std::runtime_error("LuFactorization: singular matrix");
    if (pivot != k) {
      for (std::int64_t j = 0; j < n; ++j)
        std::swap(lu_[static_cast<std::size_t>(k * n + j)],
                  lu_[static_cast<std::size_t>(pivot * n + j)]);
      std::swap(perm_[static_cast<std::size_t>(k)], perm_[static_cast<std::size_t>(pivot)]);
    }
    const double inv = 1.0 / lu_[static_cast<std::size_t>(k * n + k)];
    for (std::int64_t i = k + 1; i < n; ++i) {
      const double factor = lu_[static_cast<std::size_t>(i * n + k)] * inv;
      lu_[static_cast<std::size_t>(i * n + k)] = factor;
      if (factor == 0.0) continue;
      for (std::int64_t j = k + 1; j < n; ++j)
        lu_[static_cast<std::size_t>(i * n + j)] -= factor * lu_[static_cast<std::size_t>(k * n + j)];
    }
  }
}

void LuFactorization::solve(std::vector<double>& b) const {
  if (static_cast<std::int64_t>(b.size()) != n_)
    throw std::invalid_argument("LuFactorization::solve: size mismatch");
  std::vector<double> x(static_cast<std::size_t>(n_));
  for (std::int64_t i = 0; i < n_; ++i) x[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])];
  // Forward substitution (unit lower).
  for (std::int64_t i = 0; i < n_; ++i) {
    double acc = x[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < i; ++j)
      acc -= lu_[static_cast<std::size_t>(i * n_ + j)] * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = acc;
  }
  // Back substitution.
  for (std::int64_t i = n_ - 1; i >= 0; --i) {
    double acc = x[static_cast<std::size_t>(i)];
    for (std::int64_t j = i + 1; j < n_; ++j)
      acc -= lu_[static_cast<std::size_t>(i * n_ + j)] * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = acc / lu_[static_cast<std::size_t>(i * n_ + i)];
  }
  b = std::move(x);
}

}  // namespace cgps
