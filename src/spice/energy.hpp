// Switching-energy analysis (paper Fig. 4).
//
// For each victim net we build a small RC network: a step driver charges the
// victim through its on-resistance; the victim carries its ground cap and
// coupling caps to aggressor nets (held quiet through holder resistances,
// each with its own ground cap). The supply energy over the transient is the
// victim's switching energy. Comparing ground-truth link capacitances with
// model predictions gives the Fig. 4 MAPE.
#pragma once

#include "graph/circuit_graph.hpp"
#include "parasitics/extraction.hpp"
#include "util/rng.hpp"

#include <cstdint>
#include <vector>

namespace cgps {

struct EnergyModelOptions {
  double vdd = 0.9;          // volts
  double r_driver = 5e3;     // driver on-resistance (ohms)
  double r_holder = 50e3;    // aggressor holding resistance
  double t_stop = 10e-9;     // transient length (seconds)
  double dt = 20e-12;        // timestep
};

struct VictimEnergy {
  std::int32_t net = -1;
  double energy = 0.0;  // joules
};

// `link_caps[i]` replaces extraction.links[i].cap (pass the extracted
// values for the ground-truth run, model predictions for the other run).
// Only victims in `victim_nets` are simulated.
std::vector<VictimEnergy> switching_energy(const CircuitGraph& graph,
                                           const ExtractionResult& extraction,
                                           const std::vector<double>& link_caps,
                                           const std::vector<std::int32_t>& victim_nets,
                                           const EnergyModelOptions& options = {});

// Pick simulation victims: signal nets with at least `min_links` incident
// coupling links, deterministically subsampled to `max_victims`.
std::vector<std::int32_t> pick_victim_nets(const CircuitGraph& graph,
                                           const ExtractionResult& extraction,
                                           std::int64_t max_victims,
                                           std::int64_t min_links, Rng& rng);

}  // namespace cgps
