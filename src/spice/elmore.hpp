// Elmore delay estimation over extracted parasitics.
//
// The paper's motivation (§I): shrinking nodes make coupling capacitance
// "too significant to be overlooked in simulations, producing a substantial
// disparity between pre-layout and post-layout performance". This analyzer
// quantifies exactly that disparity per net: the first-order (Elmore) delay
// of a driven net computed (a) pre-layout — ground capacitance only — and
// (b) post-layout — ground + coupling with a Miller factor for switching
// aggressors.
#pragma once

#include "graph/circuit_graph.hpp"
#include "parasitics/extraction.hpp"

#include <cstdint>
#include <vector>

namespace cgps {

struct ElmoreOptions {
  double r_driver = 5e3;       // driver output resistance (ohms)
  double miller_factor = 2.0;  // opposite-switching aggressor multiplier
};

struct NetDelay {
  std::int32_t net = -1;
  double pre_layout = 0.0;   // seconds: R_drv * C_gnd
  double post_layout = 0.0;  // seconds: R_drv * (C_gnd + k_miller * sum C_c)

  double disparity() const {
    return pre_layout > 0.0 ? (post_layout - pre_layout) / pre_layout : 0.0;
  }
};

// Elmore delays for the given nets. `link_caps[i]` pairs with
// extraction.links[i] (pass extracted values or model predictions).
std::vector<NetDelay> elmore_delays(const CircuitGraph& graph,
                                    const ExtractionResult& extraction,
                                    const std::vector<double>& link_caps,
                                    const std::vector<std::int32_t>& nets,
                                    const ElmoreOptions& options = {});

}  // namespace cgps
