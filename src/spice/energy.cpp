#include "spice/energy.hpp"

#include "spice/rc_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace cgps {

namespace {

// Net of a coupling-link endpoint (pins resolve to their connected net).
std::int32_t endpoint_net(const CircuitGraph& graph, CouplingKind kind, std::int32_t endpoint,
                          bool is_first) {
  switch (kind) {
    case CouplingKind::kPinToNet:
      return is_first ? graph.pin_net[static_cast<std::size_t>(endpoint)] : endpoint;
    case CouplingKind::kPinToPin:
      return graph.pin_net[static_cast<std::size_t>(endpoint)];
    case CouplingKind::kNetToNet:
      return endpoint;
  }
  return -1;
}

}  // namespace

std::vector<std::int32_t> pick_victim_nets(const CircuitGraph& graph,
                                           const ExtractionResult& extraction,
                                           std::int64_t max_victims,
                                           std::int64_t min_links, Rng& rng) {
  std::unordered_map<std::int32_t, std::int64_t> incident;
  for (const CouplingLink& link : extraction.links) {
    const std::int32_t na = endpoint_net(graph, link.kind, link.a, true);
    const std::int32_t nb = endpoint_net(graph, link.kind, link.b, false);
    if (na >= 0) ++incident[na];
    if (nb >= 0 && nb != na) ++incident[nb];
  }
  std::vector<std::int32_t> candidates;
  for (const auto& [net, count] : incident) {
    if (count >= min_links) candidates.push_back(net);
  }
  std::sort(candidates.begin(), candidates.end());  // determinism before shuffle
  rng.shuffle(candidates);
  if (max_victims >= 0 && static_cast<std::int64_t>(candidates.size()) > max_victims)
    candidates.resize(static_cast<std::size_t>(max_victims));
  return candidates;
}

std::vector<VictimEnergy> switching_energy(const CircuitGraph& graph,
                                           const ExtractionResult& extraction,
                                           const std::vector<double>& link_caps,
                                           const std::vector<std::int32_t>& victim_nets,
                                           const EnergyModelOptions& options) {
  if (link_caps.size() != extraction.links.size())
    throw std::invalid_argument("switching_energy: link_caps size mismatch");

  // Per-net incident links (by index), resolved at net granularity.
  std::unordered_map<std::int32_t, std::vector<std::size_t>> net_links;
  for (std::size_t i = 0; i < extraction.links.size(); ++i) {
    const CouplingLink& link = extraction.links[i];
    const std::int32_t na = endpoint_net(graph, link.kind, link.a, true);
    const std::int32_t nb = endpoint_net(graph, link.kind, link.b, false);
    if (na >= 0) net_links[na].push_back(i);
    if (nb >= 0 && nb != na) net_links[nb].push_back(i);
  }

  std::vector<VictimEnergy> result;
  result.reserve(victim_nets.size());
  for (std::int32_t victim : victim_nets) {
    RcNetwork net;
    const std::int32_t victim_node = net.add_node();
    net.add_source(victim_node, step_wave(options.vdd, options.dt), options.r_driver);
    net.add_capacitor(victim_node, kGroundNode,
                      extraction.net_ground_cap[static_cast<std::size_t>(victim)]);

    // One node per distinct aggressor net.
    std::unordered_map<std::int32_t, std::int32_t> aggressor_node;
    auto it = net_links.find(victim);
    if (it != net_links.end()) {
      for (std::size_t li : it->second) {
        const CouplingLink& link = extraction.links[li];
        const std::int32_t na = endpoint_net(graph, link.kind, link.a, true);
        const std::int32_t nb = endpoint_net(graph, link.kind, link.b, false);
        const std::int32_t other = na == victim ? nb : na;
        if (other < 0 || other == victim) continue;
        auto [an_it, inserted] = aggressor_node.emplace(other, -1);
        if (inserted) {
          an_it->second = net.add_node();
          net.add_resistor(an_it->second, kGroundNode, options.r_holder);
          net.add_capacitor(an_it->second, kGroundNode,
                            extraction.net_ground_cap[static_cast<std::size_t>(other)]);
        }
        net.add_capacitor(victim_node, an_it->second, link_caps[li]);
      }
    }

    const auto transient = net.simulate(options.t_stop, options.dt);
    result.push_back(VictimEnergy{victim, transient.source_energy});
  }
  return result;
}

}  // namespace cgps
