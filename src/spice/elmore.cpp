#include "spice/elmore.hpp"

#include <stdexcept>
#include <unordered_map>

namespace cgps {

namespace {

std::int32_t endpoint_net(const CircuitGraph& graph, const CouplingLink& link, bool first) {
  const std::int32_t e = first ? link.a : link.b;
  switch (link.kind) {
    case CouplingKind::kPinToNet:
      return first ? graph.pin_net[static_cast<std::size_t>(e)] : e;
    case CouplingKind::kPinToPin:
      return graph.pin_net[static_cast<std::size_t>(e)];
    case CouplingKind::kNetToNet:
      return e;
  }
  return -1;
}

}  // namespace

std::vector<NetDelay> elmore_delays(const CircuitGraph& graph,
                                    const ExtractionResult& extraction,
                                    const std::vector<double>& link_caps,
                                    const std::vector<std::int32_t>& nets,
                                    const ElmoreOptions& options) {
  if (link_caps.size() != extraction.links.size())
    throw std::invalid_argument("elmore_delays: link_caps size mismatch");

  // Total coupling load per net of interest.
  std::unordered_map<std::int32_t, double> coupling;
  for (std::int32_t n : nets) coupling.emplace(n, 0.0);
  for (std::size_t i = 0; i < extraction.links.size(); ++i) {
    const CouplingLink& link = extraction.links[i];
    for (const bool first : {true, false}) {
      const std::int32_t n = endpoint_net(graph, link, first);
      const auto it = coupling.find(n);
      if (it != coupling.end()) it->second += link_caps[i];
    }
  }

  std::vector<NetDelay> out;
  out.reserve(nets.size());
  for (std::int32_t n : nets) {
    if (n < 0 || n >= static_cast<std::int32_t>(extraction.net_ground_cap.size()))
      throw std::invalid_argument("elmore_delays: net index out of range");
    NetDelay d;
    d.net = n;
    const double c_gnd = extraction.net_ground_cap[static_cast<std::size_t>(n)];
    d.pre_layout = options.r_driver * c_gnd;
    d.post_layout =
        options.r_driver * (c_gnd + options.miller_factor * coupling.at(n));
    out.push_back(d);
  }
  return out;
}

}  // namespace cgps
