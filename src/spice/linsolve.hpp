// Dense LU solver with partial pivoting for the MNA systems of the RC
// transient simulator (systems are small: a victim net plus its coupled
// aggressors).
#pragma once

#include <cstdint>
#include <vector>

namespace cgps {

class LuFactorization {
 public:
  // Factor a dense row-major n x n matrix. Throws std::runtime_error on a
  // (numerically) singular matrix.
  LuFactorization(std::vector<double> a, std::int64_t n);

  // Solve A x = b in place.
  void solve(std::vector<double>& b) const;

  std::int64_t size() const { return n_; }

 private:
  std::vector<double> lu_;
  std::vector<std::int32_t> perm_;
  std::int64_t n_;
};

}  // namespace cgps
