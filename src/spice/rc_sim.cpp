#include "spice/rc_sim.hpp"

#include "spice/linsolve.hpp"

#include <stdexcept>

namespace cgps {

std::function<double(double)> step_wave(double level, double t_step) {
  return [level, t_step](double t) { return t >= t_step ? level : 0.0; };
}

std::int32_t RcNetwork::add_node() { return n_nodes_++; }

namespace {
void check_node(std::int32_t v, std::int32_t n, const char* what) {
  if (v != kGroundNode && (v < 0 || v >= n))
    throw std::invalid_argument(std::string("RcNetwork: bad node for ") + what);
}
}  // namespace

void RcNetwork::add_resistor(std::int32_t a, std::int32_t b, double ohms) {
  check_node(a, n_nodes_, "resistor");
  check_node(b, n_nodes_, "resistor");
  if (ohms <= 0) throw std::invalid_argument("RcNetwork: resistance must be positive");
  resistors_.push_back({a, b, ohms});
}

void RcNetwork::add_capacitor(std::int32_t a, std::int32_t b, double farads) {
  check_node(a, n_nodes_, "capacitor");
  check_node(b, n_nodes_, "capacitor");
  if (farads < 0) throw std::invalid_argument("RcNetwork: negative capacitance");
  capacitors_.push_back({a, b, farads});
}

void RcNetwork::add_source(std::int32_t node, std::function<double(double)> voltage,
                           double series_ohms) {
  check_node(node, n_nodes_, "source");
  if (node == kGroundNode) throw std::invalid_argument("RcNetwork: source on ground");
  if (series_ohms <= 0) throw std::invalid_argument("RcNetwork: source needs series R");
  sources_.push_back({node, std::move(voltage), 1.0 / series_ohms});
}

RcNetwork::TransientResult RcNetwork::simulate(double t_stop, double dt,
                                               const std::vector<double>& initial_voltage) const {
  if (n_nodes_ == 0) throw std::logic_error("RcNetwork::simulate: empty network");
  if (dt <= 0 || t_stop <= 0) throw std::invalid_argument("RcNetwork::simulate: bad times");
  const auto n = static_cast<std::size_t>(n_nodes_);

  // System matrix M = G + C/dt (constant), so factor once.
  std::vector<double> m(n * n, 0.0);
  auto stamp = [&](std::int32_t a, std::int32_t b, double g) {
    if (a != kGroundNode) m[static_cast<std::size_t>(a) * n + static_cast<std::size_t>(a)] += g;
    if (b != kGroundNode) m[static_cast<std::size_t>(b) * n + static_cast<std::size_t>(b)] += g;
    if (a != kGroundNode && b != kGroundNode) {
      m[static_cast<std::size_t>(a) * n + static_cast<std::size_t>(b)] -= g;
      m[static_cast<std::size_t>(b) * n + static_cast<std::size_t>(a)] -= g;
    }
  };
  for (const auto& r : resistors_) stamp(r.a, r.b, 1.0 / r.value);
  for (const auto& c : capacitors_) stamp(c.a, c.b, c.value / dt);
  for (const auto& s : sources_)
    m[static_cast<std::size_t>(s.node) * n + static_cast<std::size_t>(s.node)] += s.conductance;

  // Tiny leak to ground keeps floating nodes well-posed.
  for (std::size_t i = 0; i < n; ++i) m[i * n + i] += 1e-15;

  const LuFactorization lu(std::move(m), n_nodes_);

  TransientResult result;
  std::vector<double> v(n, 0.0);
  if (!initial_voltage.empty()) {
    if (initial_voltage.size() != n)
      throw std::invalid_argument("RcNetwork::simulate: bad initial voltage size");
    v = initial_voltage;
  }
  result.time.push_back(0.0);
  result.voltage.push_back(v);

  std::vector<double> rhs(n);
  const auto steps = static_cast<std::int64_t>(t_stop / dt);
  for (std::int64_t step = 1; step <= steps; ++step) {
    const double t = static_cast<double>(step) * dt;
    std::fill(rhs.begin(), rhs.end(), 0.0);
    // Capacitor history currents: C/dt * (v_a - v_b) from the previous step.
    for (const auto& c : capacitors_) {
      const double va = c.a == kGroundNode ? 0.0 : v[static_cast<std::size_t>(c.a)];
      const double vb = c.b == kGroundNode ? 0.0 : v[static_cast<std::size_t>(c.b)];
      const double i_hist = c.value / dt * (va - vb);
      if (c.a != kGroundNode) rhs[static_cast<std::size_t>(c.a)] += i_hist;
      if (c.b != kGroundNode) rhs[static_cast<std::size_t>(c.b)] -= i_hist;
    }
    // Source Norton currents.
    for (const auto& s : sources_)
      rhs[static_cast<std::size_t>(s.node)] += s.voltage(t) * s.conductance;

    lu.solve(rhs);  // rhs becomes v_{step}
    // Source energy: v_src * i_src integrated.
    for (const auto& s : sources_) {
      const double vs = s.voltage(t);
      const double i = (vs - rhs[static_cast<std::size_t>(s.node)]) * s.conductance;
      result.source_energy += vs * i * dt;
    }
    v = rhs;
    result.time.push_back(t);
    result.voltage.push_back(v);
  }
  return result;
}

}  // namespace cgps
