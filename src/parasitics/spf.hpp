// DSPF-style parasitic file I/O.
//
// The paper collects ground-truth labels from post-layout SPF files. Our
// oracle writes the same kind of artifact and the dataset builder can read
// it back, so the "labels come from an SPF" code path is exercised end to
// end. Node naming: nets use their netlist name; device pins use
// "<device>:<pin-index>". Ground capacitances connect to node "0".
#pragma once

#include "parasitics/extraction.hpp"

#include <string>

namespace cgps {

std::string write_spf(const Netlist& netlist, const ExtractionResult& extraction);

// Parse an SPF produced by write_spf back into an ExtractionResult. Needs
// the netlist (and its placement-ordered flat pin table size) to resolve
// node names. Throws std::runtime_error on unknown nodes or bad syntax.
ExtractionResult parse_spf(const std::string& text, const Netlist& netlist);

}  // namespace cgps
