#include "parasitics/spf.hpp"

#include "util/strings.hpp"

#include <cinttypes>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace cgps {

namespace {

// Flat pin index -> "<device>:<pin>" name, given the netlist traversal order
// used by Placement (devices in order, pins in order).
struct PinTable {
  std::vector<std::pair<std::int32_t, std::int32_t>> owner;  // flat -> (dev, pin)
  std::unordered_map<std::string, std::int32_t> by_name;
  std::vector<std::string> names;

  explicit PinTable(const Netlist& netlist) {
    std::int32_t flat = 0;
    for (std::size_t d = 0; d < netlist.devices().size(); ++d) {
      const Device& dev = netlist.devices()[d];
      for (std::size_t p = 0; p < dev.pins.size(); ++p) {
        owner.emplace_back(static_cast<std::int32_t>(d), static_cast<std::int32_t>(p));
        std::string name = dev.name + ":" + std::to_string(p);
        by_name.emplace(name, flat);
        names.push_back(std::move(name));
        ++flat;
      }
    }
  }
};

}  // namespace

std::string write_spf(const Netlist& netlist, const ExtractionResult& extraction) {
  PinTable pins(netlist);
  std::ostringstream os;
  os << "*|DSPF 1.0\n*|DESIGN " << netlist.name() << "\n*|GROUND_NET 0\n";

  std::int64_t cap_id = 0;
  os << "* net ground capacitances\n";
  for (std::size_t n = 0; n < extraction.net_ground_cap.size(); ++n) {
    if (extraction.net_ground_cap[n] <= 0.0) continue;
    os << "Cg" << cap_id++ << ' ' << netlist.nets()[n].name << " 0 "
       << format_si(extraction.net_ground_cap[n], 6) << '\n';
  }
  os << "* pin ground capacitances\n";
  for (std::size_t fp = 0; fp < extraction.pin_ground_cap.size(); ++fp) {
    if (extraction.pin_ground_cap[fp] <= 0.0) continue;
    os << "Cg" << cap_id++ << ' ' << pins.names[fp] << " 0 "
       << format_si(extraction.pin_ground_cap[fp], 6) << '\n';
  }
  os << "* coupling capacitances\n";
  for (const CouplingLink& link : extraction.links) {
    std::string a, b;
    switch (link.kind) {
      case CouplingKind::kPinToNet:
        a = pins.names[static_cast<std::size_t>(link.a)];
        b = netlist.nets()[static_cast<std::size_t>(link.b)].name;
        break;
      case CouplingKind::kPinToPin:
        a = pins.names[static_cast<std::size_t>(link.a)];
        b = pins.names[static_cast<std::size_t>(link.b)];
        break;
      case CouplingKind::kNetToNet:
        a = netlist.nets()[static_cast<std::size_t>(link.a)].name;
        b = netlist.nets()[static_cast<std::size_t>(link.b)].name;
        break;
    }
    os << "Cc" << cap_id++ << ' ' << a << ' ' << b << ' ' << format_si(link.cap, 6) << '\n';
  }
  os << "*|END\n";
  return os.str();
}

ExtractionResult parse_spf(const std::string& text, const Netlist& netlist) {
  PinTable pins(netlist);
  ExtractionResult result;
  result.net_ground_cap.assign(static_cast<std::size_t>(netlist.num_nets()), 0.0);
  result.pin_ground_cap.assign(pins.owner.size(), 0.0);

  // Node name -> (is_pin, index). Returns false for ground "0".
  auto resolve = [&](const std::string& name, bool& is_pin, std::int32_t& index) -> bool {
    if (name == "0") return false;
    if (const auto it = pins.by_name.find(name); it != pins.by_name.end()) {
      is_pin = true;
      index = it->second;
      return true;
    }
    const std::int32_t net = netlist.find_net(name);
    if (net < 0) throw std::runtime_error("parse_spf: unknown node " + name);
    is_pin = false;
    index = net;
    return true;
  };

  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '*') continue;
    if (t[0] != 'C' && t[0] != 'c')
      throw std::runtime_error("parse_spf: unexpected card at line " + std::to_string(lineno));
    const auto tokens = split_ws(t);
    if (tokens.size() != 4)
      throw std::runtime_error("parse_spf: malformed cap at line " + std::to_string(lineno));
    const auto value = parse_spice_number(tokens[3]);
    if (!value)
      throw std::runtime_error("parse_spf: bad value at line " + std::to_string(lineno));

    bool a_pin = false, b_pin = false;
    std::int32_t a = -1, b = -1;
    const bool a_node = resolve(tokens[1], a_pin, a);
    const bool b_node = resolve(tokens[2], b_pin, b);
    if (a_node && !b_node) {
      // Ground capacitance.
      if (a_pin) {
        result.pin_ground_cap[static_cast<std::size_t>(a)] = *value;
      } else {
        result.net_ground_cap[static_cast<std::size_t>(a)] = *value;
      }
    } else if (a_node && b_node) {
      CouplingLink link;
      if (a_pin && b_pin) {
        link.kind = CouplingKind::kPinToPin;
        if (a > b) std::swap(a, b);
      } else if (!a_pin && !b_pin) {
        link.kind = CouplingKind::kNetToNet;
        if (a > b) std::swap(a, b);
      } else {
        link.kind = CouplingKind::kPinToNet;
        if (!a_pin) std::swap(a, b);  // convention: a = pin, b = net
      }
      link.a = a;
      link.b = b;
      link.cap = *value;
      result.links.push_back(link);
    } else {
      throw std::runtime_error("parse_spf: capacitor to ground only at line " +
                               std::to_string(lineno));
    }
  }
  return result;
}

}  // namespace cgps
