// Geometric parasitic-coupling oracle.
//
// Substitute for the commercial post-layout extraction that produced the
// paper's ground truth (SPF files). Given a placed netlist it derives:
//   * coupling capacitances — pin-to-net, pin-to-pin and net-to-net links
//     (paper edge types 2/3/4) from route/pin proximity using a parallel-
//     plate + fringe model with distance decay;
//   * ground capacitances per net and per pin (node-regression targets).
//
// The capacitance values land in the paper's retained window
// [1e-21 F, 1e-15 F]; pairs that fall below the floor are dropped, which is
// what makes link existence a non-trivial prediction target.
#pragma once

#include "layout/placer.hpp"
#include "netlist/netlist.hpp"

#include <cstdint>
#include <vector>

namespace cgps {

// Matches the paper's link/edge type codes (Fig. 1).
enum class CouplingKind : std::int8_t {
  kPinToNet = 2,
  kPinToPin = 3,
  kNetToNet = 4,
};

const char* coupling_kind_name(CouplingKind kind);

// Endpoints are type-dependent:
//  kPinToNet: a = flat pin index, b = net index
//  kPinToPin: a, b = flat pin indices (a < b)
//  kNetToNet: a, b = net indices (a < b)
// Flat pin indices follow Placement::flat_pin_owner order.
struct CouplingLink {
  CouplingKind kind;
  std::int32_t a = -1;
  std::int32_t b = -1;
  double cap = 0.0;  // farads
};

struct ExtractionResult {
  std::vector<CouplingLink> links;
  std::vector<double> net_ground_cap;  // per net (farads)
  std::vector<double> pin_ground_cap;  // per flat pin (farads)

  std::int64_t count(CouplingKind kind) const;
};

struct ExtractionOptions {
  // Candidate-search radii. Defaults pick up same-cell and adjacent-site
  // geometry (site pitch 0.5um, row pitch 1.2um), where the above-floor
  // couplings live.
  double net_window = 1.3e-6;   // max trunk-to-trunk vertical distance
  double pin_radius = 0.35e-6;  // max pin-to-pin / pin-to-trunk distance
  // Physical model constants. c_plate is the parallel-plate line capacitance
  // per metre of coupled run at the minimum spacing d0 (~eps0*eps_r*h/d for
  // h ~ d ~ 0.1um, eps_r ~ 3 -> tens of aF/um); it decays as d0/(d+d0).
  double c_plate = 2.6e-11;     // F/m at d0 spacing
  double c_fringe = 1.0e-11;    // F/m fringe term, decays as 1/(1+(d/d0)^2)
  double d0 = 0.1e-6;           // minimum spacing reference
  double cap_floor = 1e-21;     // links below this are not "extracted"
  double cap_ceiling = 1e-15;   // clamp (paper keeps 1e-21..1e-15 F)
  // Ground-capacitance model. The area/ground component dominates the
  // coupling component for a typical net (coupling is a significant but
  // minority share, as in real stacks).
  double c_gnd_per_m = 3.0e-11;  // F/m of estimated wire length
  double c_gnd_per_pin = 2e-17;  // contact/via stack
  double c_ox_per_m2 = 3e-2;     // gate-oxide F/m^2 (~30 fF/um^2 at 28nm)
  double c_junction_per_m = 0.4e-9;  // S/D junction F/m of width
  // Nets with more pins than this (power rails) are skipped as coupling
  // victims/aggressors; their capacitance is not a prediction target.
  std::int32_t global_net_pin_limit = 256;
};

ExtractionResult extract_parasitics(const Netlist& netlist, const Placement& placement,
                                    const ExtractionOptions& options = {});

}  // namespace cgps
