#include "parasitics/extraction.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace cgps {

const char* coupling_kind_name(CouplingKind kind) {
  switch (kind) {
    case CouplingKind::kPinToNet: return "pin-net";
    case CouplingKind::kPinToPin: return "pin-pin";
    case CouplingKind::kNetToNet: return "net-net";
  }
  return "?";
}

std::int64_t ExtractionResult::count(CouplingKind kind) const {
  std::int64_t total = 0;
  for (const CouplingLink& link : links)
    if (link.kind == kind) ++total;
  return total;
}

namespace {

// Distance-decayed parallel-plate + fringe capacitance for a coupled run of
// length `overlap` at spacing `dist`.
double coupling_cap(double overlap, double dist, const ExtractionOptions& opt) {
  if (overlap <= 0.0) return 0.0;
  const double d = std::max(dist, 0.02e-6);
  const double ratio = opt.d0 / (d + opt.d0);
  const double plate = opt.c_plate * ratio;
  const double fringe = opt.c_fringe / (1.0 + (d / opt.d0) * (d / opt.d0));
  return overlap * (plate + fringe);
}

// Point-coupling (pin caps are localized): effective overlap ~ pin extent.
double point_cap(double dist, double extent, const ExtractionOptions& opt) {
  return coupling_cap(extent, dist, opt);
}

// Effective coupled length of a pin: base contact size plus the device's
// drawn metal (wider devices expose proportionally more pin geometry).
double pin_extent(const Device& dev) {
  return 0.05e-6 + dev.width * dev.multiplier + 0.5 * dev.length;
}

struct PinGrid {
  double cell = 1.0;
  std::unordered_map<std::int64_t, std::vector<std::int32_t>> buckets;

  std::int64_t key(double x, double y) const {
    const auto ix = static_cast<std::int64_t>(std::floor(x / cell));
    const auto iy = static_cast<std::int64_t>(std::floor(y / cell));
    // Exact packing (no collisions) so each pair is visited exactly once.
    return (ix << 32) | (iy & 0xffffffffLL);
  }
  void insert(std::int32_t id, const Point& p) { buckets[key(p.x, p.y)].push_back(id); }

  template <typename Fn>
  void for_neighbors(const Point& p, Fn&& fn) const {
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        const auto it = buckets.find(key(p.x + dx * cell, p.y + dy * cell));
        if (it == buckets.end()) continue;
        for (std::int32_t id : it->second) fn(id);
      }
    }
  }
};

}  // namespace

ExtractionResult extract_parasitics(const Netlist& netlist, const Placement& placement,
                                    const ExtractionOptions& opt) {
  ExtractionResult result;
  const auto n_nets = static_cast<std::size_t>(netlist.num_nets());
  const auto n_pins = placement.flat_pins.size();

  // ---- Ground capacitances -------------------------------------------------
  result.net_ground_cap.assign(n_nets, 0.0);
  for (std::size_t n = 0; n < n_nets; ++n) {
    const NetRoute& route = placement.net_route[n];
    result.net_ground_cap[n] =
        opt.c_gnd_per_m * route.wire_length + opt.c_gnd_per_pin * route.n_pins;
  }
  result.pin_ground_cap.assign(n_pins, 0.0);
  for (std::size_t fp = 0; fp < n_pins; ++fp) {
    const auto [dev_idx, pin_idx] = placement.flat_pin_owner[fp];
    const Device& dev = netlist.devices()[static_cast<std::size_t>(dev_idx)];
    const Pin& pin = dev.pins[static_cast<std::size_t>(pin_idx)];
    double cap = 2e-18;  // via/contact floor
    switch (pin.role) {
      case PinRole::kGate:
        cap += opt.c_ox_per_m2 * dev.width * dev.length * dev.multiplier;
        break;
      case PinRole::kDrain:
      case PinRole::kSource:
        cap += opt.c_junction_per_m * dev.width * dev.multiplier;
        break;
      case PinRole::kBulk:
        cap += 0.5 * opt.c_junction_per_m * dev.width * dev.multiplier;
        break;
      case PinRole::kPositive:
      case PinRole::kNegative:
        cap += 0.2 * opt.c_gnd_per_m * (dev.length > 0 ? dev.length : 1e-6);
        break;
    }
    result.pin_ground_cap[fp] = cap;
  }

  // Victim eligibility: skip unplaced and global (power-rail) nets.
  auto net_eligible = [&](std::size_t n) {
    const NetRoute& r = placement.net_route[n];
    return r.n_pins > 0 && r.n_pins <= opt.global_net_pin_limit;
  };

  auto push_link = [&](CouplingKind kind, std::int32_t a, std::int32_t b, double cap) {
    if (cap < opt.cap_floor) return;
    cap = std::min(cap, opt.cap_ceiling);
    if (a > b && (kind == CouplingKind::kPinToPin || kind == CouplingKind::kNetToNet))
      std::swap(a, b);
    result.links.push_back(CouplingLink{kind, a, b, cap});
  };

  // ---- Net-to-net coupling: sweep trunks sorted by y -------------------------
  std::vector<std::int32_t> trunk_order;
  trunk_order.reserve(n_nets);
  for (std::size_t n = 0; n < n_nets; ++n)
    if (net_eligible(n)) trunk_order.push_back(static_cast<std::int32_t>(n));
  std::sort(trunk_order.begin(), trunk_order.end(), [&](std::int32_t a, std::int32_t b) {
    return placement.net_route[static_cast<std::size_t>(a)].trunk_y <
           placement.net_route[static_cast<std::size_t>(b)].trunk_y;
  });
  for (std::size_t i = 0; i < trunk_order.size(); ++i) {
    const auto na = static_cast<std::size_t>(trunk_order[i]);
    const NetRoute& ra = placement.net_route[na];
    for (std::size_t j = i + 1; j < trunk_order.size(); ++j) {
      const auto nb = static_cast<std::size_t>(trunk_order[j]);
      const NetRoute& rb = placement.net_route[nb];
      const double dy = rb.trunk_y - ra.trunk_y;
      if (dy > opt.net_window) break;  // sorted by y: no more candidates
      const double overlap = interval_overlap(ra.trunk_x0, ra.trunk_x1, rb.trunk_x0, rb.trunk_x1);
      if (overlap <= 0.0) continue;
      push_link(CouplingKind::kNetToNet, static_cast<std::int32_t>(na),
                static_cast<std::int32_t>(nb), coupling_cap(overlap, dy, opt));
    }
  }

  // ---- Pin grid for point couplings -----------------------------------------
  PinGrid grid;
  grid.cell = opt.pin_radius;
  for (std::size_t fp = 0; fp < n_pins; ++fp)
    grid.insert(static_cast<std::int32_t>(fp), placement.flat_pins[fp]);

  // Pin-to-pin: pins of different devices, different nets, within radius.
  // The coupled extent combines both pins' metal sizes (pin_extent above),
  // tying the capacitance magnitude to device geometry.
  for (std::size_t fp = 0; fp < n_pins; ++fp) {
    const Point& p = placement.flat_pins[fp];
    const auto [dev_a, pin_a] = placement.flat_pin_owner[fp];
    const Device& da = netlist.devices()[static_cast<std::size_t>(dev_a)];
    const Pin& pa = da.pins[static_cast<std::size_t>(pin_a)];
    grid.for_neighbors(p, [&](std::int32_t other) {
      if (other <= static_cast<std::int32_t>(fp)) return;  // each unordered pair once
      const auto [dev_b, pin_b] = placement.flat_pin_owner[static_cast<std::size_t>(other)];
      if (dev_b == dev_a) return;  // intra-device cap is part of the device model
      const Device& db = netlist.devices()[static_cast<std::size_t>(dev_b)];
      const Pin& pb = db.pins[static_cast<std::size_t>(pin_b)];
      if (pb.net == pa.net) return;  // same electrical node
      const Point& q = placement.flat_pins[static_cast<std::size_t>(other)];
      const double dist = std::hypot(q.x - p.x, q.y - p.y);
      if (dist > opt.pin_radius) return;
      const double extent = 0.5 * (pin_extent(da) + pin_extent(db));
      push_link(CouplingKind::kPinToPin, static_cast<std::int32_t>(fp), other,
                point_cap(dist, extent, opt));
    });
  }

  // Pin-to-net: pin within `pin_radius` of a net trunk it does not belong
  // to. Trunks are bucketed by y for the candidate search.
  const double bucket_h = opt.pin_radius;
  std::unordered_map<std::int64_t, std::vector<std::int32_t>> trunk_buckets;
  for (std::int32_t n : trunk_order) {
    const auto iy = static_cast<std::int64_t>(
        std::floor(placement.net_route[static_cast<std::size_t>(n)].trunk_y / bucket_h));
    trunk_buckets[iy].push_back(n);
  }
  for (std::size_t fp = 0; fp < n_pins; ++fp) {
    const Point& p = placement.flat_pins[fp];
    const auto [dev_idx, pin_idx] = placement.flat_pin_owner[fp];
    const Device& dev = netlist.devices()[static_cast<std::size_t>(dev_idx)];
    const Pin& pin = dev.pins[static_cast<std::size_t>(pin_idx)];
    const auto iy0 = static_cast<std::int64_t>(std::floor(p.y / bucket_h));
    for (std::int64_t iy = iy0 - 1; iy <= iy0 + 1; ++iy) {
      const auto it = trunk_buckets.find(iy);
      if (it == trunk_buckets.end()) continue;
      for (std::int32_t n : it->second) {
        if (n == pin.net) continue;
        const NetRoute& route = placement.net_route[static_cast<std::size_t>(n)];
        const double dy = std::fabs(route.trunk_y - p.y);
        if (dy > opt.pin_radius) continue;
        // Horizontal distance to the trunk span.
        double dx = 0.0;
        if (p.x < route.trunk_x0) {
          dx = route.trunk_x0 - p.x;
        } else if (p.x > route.trunk_x1) {
          dx = p.x - route.trunk_x1;
        }
        const double dist = std::hypot(dx, dy);
        if (dist > opt.pin_radius) continue;
        push_link(CouplingKind::kPinToNet, static_cast<std::int32_t>(fp), n,
                  point_cap(dist, 2.0 * pin_extent(dev), opt));
      }
    }
  }
  return result;
}

}  // namespace cgps
