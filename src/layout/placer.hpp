// Deterministic connectivity-aware row placement + net route estimation.
//
// The paper's ground truth comes from real layouts; our substitute assigns
// every device a row-based position where the placement order follows a
// depth-first traversal of the shared-net adjacency (power and other
// high-fanout nets are excluded from clustering). Connected devices land
// close together, which is exactly the structure-geometry correlation the
// learned models exploit. Pins get per-role offsets inside the device
// footprint; every net gets a horizontal routing trunk at the median pin y
// plus its bounding box, which the parasitic oracle measures.
#pragma once

#include "layout/geometry.hpp"
#include "netlist/netlist.hpp"

#include <cstdint>
#include <vector>

namespace cgps {

struct NetRoute {
  Rect bbox;          // bounding box of the net's pins
  double trunk_y = 0.0;  // y of the horizontal routing trunk
  double trunk_x0 = 0.0;
  double trunk_x1 = 0.0;
  double wire_length = 0.0;  // half-perimeter estimate
  std::int32_t n_pins = 0;
};

struct Placement {
  std::vector<Point> device_center;            // per device
  std::vector<std::vector<Point>> pin_position;  // per device, per pin
  std::vector<NetRoute> net_route;             // per net
  double row_height = 0.0;
  double site_width = 0.0;

  // Global pin coordinates flattened in (device, pin) order with an index
  // helper; used by the extractor's spatial hash.
  std::vector<Point> flat_pins;
  std::vector<std::pair<std::int32_t, std::int32_t>> flat_pin_owner;  // (device, pin)
};

struct PlacerOptions {
  double site_width = 0.5e-6;   // device pitch
  double row_height = 1.2e-6;   // placement row pitch
  // Nets with more connected pins than this are treated as global
  // (power/clock) and do not steer clustering.
  std::int32_t cluster_fanout_limit = 48;
  std::uint64_t seed = 1;       // jitter seed (placement stays deterministic)
};

// Place `netlist` and estimate all net routes. Runtime is O(V + E) plus a
// sort per net.
Placement place(const Netlist& netlist, const PlacerOptions& options = {});

}  // namespace cgps
