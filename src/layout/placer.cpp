#include "layout/placer.hpp"

#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

namespace cgps {

namespace {

// Per-role pin offsets inside the device footprint (fractions of the site).
Point pin_offset(PinRole role, double site_width, double row_height) {
  switch (role) {
    case PinRole::kGate: return {0.0, 0.25 * row_height};
    case PinRole::kDrain: return {0.3 * site_width, 0.0};
    case PinRole::kSource: return {-0.3 * site_width, 0.0};
    case PinRole::kBulk: return {0.0, -0.35 * row_height};
    case PinRole::kPositive: return {0.25 * site_width, 0.1 * row_height};
    case PinRole::kNegative: return {-0.25 * site_width, -0.1 * row_height};
  }
  return {};
}

}  // namespace

Placement place(const Netlist& netlist, const PlacerOptions& options) {
  const auto n_devices = static_cast<std::size_t>(netlist.num_devices());
  const auto n_nets = static_cast<std::size_t>(netlist.num_nets());

  // net -> devices adjacency (for clustering), with per-net pin counts.
  std::vector<std::vector<std::int32_t>> net_devices(n_nets);
  std::vector<std::int32_t> net_pin_count(n_nets, 0);
  for (std::size_t d = 0; d < n_devices; ++d) {
    for (const Pin& pin : netlist.devices()[d].pins) {
      net_devices[static_cast<std::size_t>(pin.net)].push_back(static_cast<std::int32_t>(d));
      ++net_pin_count[static_cast<std::size_t>(pin.net)];
    }
  }

  // Breadth-first ordering over shared-net adjacency, so devices that share
  // a net land on consecutive sites. Global nets (fanout above the limit)
  // are skipped so rows follow logical clusters, not the power grid.
  std::vector<std::int32_t> order;
  order.reserve(n_devices);
  std::vector<char> visited(n_devices, 0);
  std::deque<std::int32_t> stack;
  for (std::size_t seed_dev = 0; seed_dev < n_devices; ++seed_dev) {
    if (visited[seed_dev]) continue;
    stack.push_back(static_cast<std::int32_t>(seed_dev));
    visited[seed_dev] = 1;
    while (!stack.empty()) {
      const std::int32_t d = stack.front();
      stack.pop_front();
      order.push_back(d);
      const Device& dev = netlist.devices()[static_cast<std::size_t>(d)];
      for (const Pin& pin : dev.pins) {
        const auto net = static_cast<std::size_t>(pin.net);
        if (net_pin_count[net] > options.cluster_fanout_limit) continue;
        for (std::int32_t nbr : net_devices[net]) {
          if (!visited[static_cast<std::size_t>(nbr)]) {
            visited[static_cast<std::size_t>(nbr)] = 1;
            stack.push_back(nbr);
          }
        }
      }
    }
  }

  Placement result;
  result.row_height = options.row_height;
  result.site_width = options.site_width;
  result.device_center.resize(n_devices);
  result.pin_position.resize(n_devices);

  // Square-ish floorplan: sites per row ~ sqrt(#devices).
  const auto sites_per_row =
      std::max<std::size_t>(4, static_cast<std::size_t>(std::ceil(std::sqrt(
                                   static_cast<double>(std::max<std::size_t>(1, n_devices))))));
  Rng rng(options.seed);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto d = static_cast<std::size_t>(order[i]);
    const std::size_t row = i / sites_per_row;
    const std::size_t site = i % sites_per_row;
    // Small deterministic jitter keeps distances from being exactly
    // quantized (real layouts are not perfectly gridded either). Kept well
    // below the extraction spacing scale so it perturbs rather than
    // dominates the coupling values.
    const double jx = rng.uniform(-0.03, 0.03) * options.site_width;
    const double jy = rng.uniform(-0.02, 0.02) * options.row_height;
    result.device_center[d] = {static_cast<double>(site) * options.site_width + jx,
                               static_cast<double>(row) * options.row_height + jy};
  }

  // Pin coordinates.
  for (std::size_t d = 0; d < n_devices; ++d) {
    const Device& dev = netlist.devices()[d];
    auto& pins = result.pin_position[d];
    pins.resize(dev.pins.size());
    for (std::size_t p = 0; p < dev.pins.size(); ++p) {
      const Point off = pin_offset(dev.pins[p].role, options.site_width, options.row_height);
      pins[p] = {result.device_center[d].x + off.x, result.device_center[d].y + off.y};
    }
    for (std::size_t p = 0; p < dev.pins.size(); ++p) {
      result.flat_pins.push_back(pins[p]);
      result.flat_pin_owner.emplace_back(static_cast<std::int32_t>(d),
                                         static_cast<std::int32_t>(p));
    }
  }

  // Net routes: bounding box + horizontal trunk at the median pin y.
  result.net_route.resize(n_nets);
  std::vector<std::vector<double>> net_ys(n_nets);
  for (std::size_t d = 0; d < n_devices; ++d) {
    const Device& dev = netlist.devices()[d];
    for (std::size_t p = 0; p < dev.pins.size(); ++p) {
      const auto net = static_cast<std::size_t>(dev.pins[p].net);
      const Point& pt = result.pin_position[d][p];
      NetRoute& route = result.net_route[net];
      if (route.n_pins == 0) {
        route.bbox = Rect::around(pt);
      } else {
        route.bbox.expand(pt);
      }
      ++route.n_pins;
      net_ys[net].push_back(pt.y);
    }
  }
  for (std::size_t n = 0; n < n_nets; ++n) {
    NetRoute& route = result.net_route[n];
    if (route.n_pins == 0) continue;
    auto& ys = net_ys[n];
    std::nth_element(ys.begin(), ys.begin() + static_cast<std::ptrdiff_t>(ys.size() / 2),
                     ys.end());
    route.trunk_y = ys[ys.size() / 2];
    route.trunk_x0 = route.bbox.x0;
    route.trunk_x1 = route.bbox.x1;
    route.wire_length = half_perimeter(route.bbox);
  }
  return result;
}

}  // namespace cgps
