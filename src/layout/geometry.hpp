// Plain geometry types shared by the placer and the parasitic extractor.
#pragma once

#include <algorithm>

namespace cgps {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

struct Rect {
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;

  double width() const { return x1 - x0; }
  double height() const { return y1 - y0; }

  void expand(const Point& p) {
    x0 = std::min(x0, p.x);
    y0 = std::min(y0, p.y);
    x1 = std::max(x1, p.x);
    y1 = std::max(y1, p.y);
  }

  static Rect around(const Point& p) { return Rect{p.x, p.y, p.x, p.y}; }
};

// Overlap length of the intervals [a0, a1] and [b0, b1]; 0 when disjoint.
inline double interval_overlap(double a0, double a1, double b0, double b1) {
  return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

inline double half_perimeter(const Rect& r) { return r.width() + r.height(); }

}  // namespace cgps
